#include "cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "hdc/wire.hpp"
#include "hier/dim_allocation.hpp"
#include "net/simulator.hpp"
#include "proto/messages.hpp"

namespace edgehd::core {

using net::NodeId;
using net::SimTime;

namespace {

/// DNN training epochs (grid-search scale, per Section VI-B).
constexpr std::uint64_t kDnnEpochs = 50;
/// MLP hidden layout used for the DNN op counts.
constexpr std::size_t kHidden1 = 128;
constexpr std::size_t kHidden2 = 64;
/// Sparsity of the HD encoders (Section VI-B reports 80%).
constexpr double kSparsity = 0.8;

std::size_t sparse_window(std::size_t n) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround((1.0 - kSparsity) * n)));
}

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

WorkloadShape WorkloadShape::from_spec(const data::DatasetSpec& spec) {
  WorkloadShape s;
  s.num_features = spec.num_features;
  s.num_classes = spec.num_classes;
  s.train_size = spec.paper_train;
  s.test_size = spec.paper_test;
  const std::size_t nodes = std::max<std::size_t>(1, spec.end_nodes);
  s.partitions.assign(nodes, spec.num_features / nodes);
  for (std::size_t i = 0; i < spec.num_features % nodes; ++i) {
    ++s.partitions[i];
  }
  return s;
}

CostModel::CostModel(WorkloadShape shape, SystemConfig config)
    : shape_(std::move(shape)), config_(config) {
  if (shape_.num_features == 0 || shape_.num_classes < 2 ||
      shape_.partitions.empty()) {
    throw std::invalid_argument("CostModel: invalid workload shape");
  }
  const std::size_t sum = std::accumulate(shape_.partitions.begin(),
                                          shape_.partitions.end(),
                                          std::size_t{0});
  if (sum != shape_.num_features) {
    throw std::invalid_argument("CostModel: partitions must sum to n");
  }
}

std::uint64_t CostModel::num_batches() const {
  const std::uint64_t per_class =
      ceil_div(shape_.train_size, shape_.num_classes);
  return shape_.num_classes * ceil_div(per_class, config_.batch_size);
}

std::uint64_t CostModel::dnn_train_macs() const {
  const std::uint64_t fwd =
      static_cast<std::uint64_t>(shape_.num_features) * kHidden1 +
      static_cast<std::uint64_t>(kHidden1) * kHidden2 +
      static_cast<std::uint64_t>(kHidden2) * shape_.num_classes;
  // forward + backward + weight gradients per sample, per epoch.
  return kDnnEpochs * shape_.train_size * 3 * fwd;
}

std::uint64_t CostModel::dnn_infer_macs_per_query() const {
  return static_cast<std::uint64_t>(shape_.num_features) * kHidden1 +
         static_cast<std::uint64_t>(kHidden1) * kHidden2 +
         static_cast<std::uint64_t>(kHidden2) * shape_.num_classes;
}

std::uint64_t CostModel::hd_central_train_macs(bool sparse_encoder) const {
  const std::uint64_t d = config_.total_dim;
  const std::uint64_t enc_per_sample =
      d * (sparse_encoder ? sparse_window(shape_.num_features)
                          : shape_.num_features);
  // Encode once + initial bundling, then per-sample associative search and
  // (bounded) model update per retraining epoch.
  const std::uint64_t initial = shape_.train_size * (enc_per_sample + d);
  const std::uint64_t retrain = config_.retrain_epochs * shape_.train_size *
                                d * (shape_.num_classes + 1);
  return initial + retrain;
}

std::uint64_t CostModel::hd_central_infer_macs_per_query(
    bool sparse_encoder) const {
  const std::uint64_t d = config_.total_dim;
  const std::uint64_t enc =
      d * (sparse_encoder ? sparse_window(shape_.num_features)
                          : shape_.num_features);
  return enc + d * shape_.num_classes;
}

std::vector<std::size_t> CostModel::node_dims(
    const net::Topology& topo) const {
  const auto alloc = hier::allocate_dims(topo, shape_.partitions,
                                         config_.total_dim,
                                         config_.min_node_dim);
  return alloc.dims;
}

std::uint64_t CostModel::compressed_query_bytes(std::size_t dim) const {
  return proto::compressed_query_wire_size(dim, config_.compression);
}

PhaseCosts CostModel::centralized_train(const net::Topology& topo,
                                        const net::Medium& medium,
                                        const net::Platform& platform,
                                        std::uint64_t compute_macs) const {
  net::Simulator sim(topo, medium);
  const auto leaves = topo.leaves();
  auto arrived = std::make_shared<std::size_t>(0);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const std::uint64_t bytes =
        shape_.train_size * hdc::wire_bytes_features(shape_.partitions[i]);
    sim.send_to_root(leaves[i], bytes, [&, arrived]() {
      if (++*arrived == leaves.size()) {
        sim.compute(topo.root(), net::time_for_macs(platform, compute_macs),
                    platform.active_power_w);
      }
    });
  }
  PhaseCosts costs;
  costs.time = sim.run();
  costs.energy_j = sim.total_energy_j();
  costs.bytes = sim.total_bytes_transferred();
  return costs;
}

PhaseCosts CostModel::centralized_infer(const net::Topology& topo,
                                        const net::Medium& medium,
                                        const net::Platform& platform,
                                        std::uint64_t macs_per_query) const {
  net::Simulator sim(topo, medium);
  const auto leaves = topo.leaves();
  auto arrived = std::make_shared<std::size_t>(0);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const std::uint64_t bytes =
        shape_.test_size * hdc::wire_bytes_features(shape_.partitions[i]);
    sim.send_to_root(leaves[i], bytes, [&, arrived]() {
      if (++*arrived == leaves.size()) {
        sim.compute(topo.root(),
                    net::time_for_macs(platform,
                                       macs_per_query * shape_.test_size),
                    platform.active_power_w);
      }
    });
  }
  PhaseCosts costs;
  costs.time = sim.run();
  costs.energy_j = sim.total_energy_j();
  costs.bytes = sim.total_bytes_transferred();
  return costs;
}

PhaseCosts CostModel::edgehd_train(const net::Topology& topo,
                                   const net::Medium& medium) const {
  const auto dims = node_dims(topo);
  const auto leaves = topo.leaves();
  const std::uint64_t batches = num_batches();
  const std::uint64_t k = shape_.num_classes;

  net::Simulator sim(topo, medium);

  // Bytes each node uploads to its parent: k class hypervectors plus the
  // batch hypervectors, all integer accumulators sized to their magnitude.
  auto upload_bytes = [&](NodeId id) -> std::uint64_t {
    const std::uint32_t class_bits = hdc::bits_for_magnitude(
        static_cast<std::int64_t>(ceil_div(shape_.train_size, k)));
    const std::uint32_t batch_bits = hdc::bits_for_magnitude(
        static_cast<std::int64_t>(config_.batch_size));
    return k * hdc::wire_bytes_accum(dims[id], class_bits) +
           batches * hdc::wire_bytes_accum(dims[id], batch_bits);
  };

  // Compute work per node, split into the part that gates the upload to the
  // parent (encoding/projection — batch hypervectors must exist before they
  // can be forwarded) and the part that runs off the critical path (the
  // node's own retraining, which nothing upstream waits for; the root's
  // retraining produces the final model and stays on the path).
  struct Work {
    SimTime on_path;
    SimTime off_path;
    double power;
  };
  auto node_work = [&](NodeId id) -> Work {
    const net::Platform& plat = id == topo.root()
                                    ? net::hd_fpga_central()
                                    : net::edge_node();
    const std::uint64_t d = dims[id];
    std::uint64_t path_macs = 0;
    if (topo.is_leaf(id)) {
      // Find the leaf's partition index to size the encoder window.
      const auto it = std::find(leaves.begin(), leaves.end(), id);
      const std::size_t n_i =
          shape_.partitions[static_cast<std::size_t>(it - leaves.begin())];
      // Encode + bundle every local observation.
      path_macs = shape_.train_size * d * (sparse_window(n_i) + 1);
    } else {
      // Hierarchical encoding of k class + `batches` batch hypervectors
      // (ternary adds, ~4x cheaper than MACs).
      path_macs = (k + batches) * config_.projection_row_nnz * d / 4;
    }
    const std::uint64_t retrain_macs =
        config_.retrain_epochs * batches * d * (k + 1);
    Work w{net::time_for_macs(plat, path_macs),
           net::time_for_macs(plat, retrain_macs), plat.active_power_w};
    if (id == topo.root()) {
      w.on_path += w.off_path;
      w.off_path = 0;
    }
    return w;
  };

  // Dataflow: every node runs its path work once all of its children's
  // uploads have arrived, then uploads to its parent; its retraining runs
  // concurrently with the upload. All events run inside sim.run() below, so
  // reference captures of these locals stay valid.
  std::vector<std::size_t> pending(topo.num_nodes());
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    pending[id] = topo.children(id).size();
  }
  std::function<void(NodeId)> process = [&](NodeId id) {
    const Work w = node_work(id);
    sim.compute(id, w.on_path, w.power, [&, id, w]() {
      if (id == topo.root()) return;
      const NodeId parent = topo.parent(id);
      sim.send(id, parent, upload_bytes(id), [&, parent]() {
        if (--pending[parent] == 0) process(parent);
      });
      if (w.off_path > 0) sim.compute(id, w.off_path, w.power);
    });
  };
  for (NodeId leaf : leaves) process(leaf);

  PhaseCosts costs;
  costs.time = sim.run();
  costs.energy_j = sim.total_energy_j();
  costs.bytes = sim.total_bytes_transferred();
  return costs;
}

PhaseCosts CostModel::edgehd_inference_routed(
    const net::Topology& topo, const net::Medium& medium,
    const std::vector<double>& level_fractions) const {
  PhaseCosts total;
  for (std::size_t i = 0; i < level_fractions.size(); ++i) {
    const std::size_t level = std::min(i + 1, topo.depth());
    if (level_fractions[i] <= 0.0) continue;
    const auto part =
        edgehd_inference_at_level(topo, medium, level, level_fractions[i]);
    total.time += part.time;
    total.energy_j += part.energy_j;
    total.bytes += part.bytes;
  }
  return total;
}

PhaseCosts CostModel::edgehd_inference_at_level(const net::Topology& topo,
                                                const net::Medium& medium,
                                                std::size_t level,
                                                double query_fraction) const {
  if (level == 0 || level > topo.depth()) {
    throw std::invalid_argument("CostModel: inference level out of range");
  }
  if (query_fraction <= 0.0 || query_fraction > 1.0) {
    throw std::invalid_argument("CostModel: query_fraction out of range");
  }
  const auto dims = node_dims(topo);
  const auto leaves = topo.leaves();
  const std::uint64_t k = shape_.num_classes;

  // Serving node per leaf: the nearest ancestor (or the leaf itself) whose
  // level is >= the requested level.
  std::vector<NodeId> serving_of(topo.num_nodes(), net::kNoNode);
  std::vector<NodeId> serving_set;
  for (NodeId leaf : leaves) {
    NodeId s = leaf;
    while (topo.level(s) < level && s != topo.root()) s = topo.parent(s);
    serving_of[leaf] = s;
    if (std::find(serving_set.begin(), serving_set.end(), s) ==
        serving_set.end()) {
      serving_set.push_back(s);
    }
  }
  // Queries round-robin over the serving nodes.
  const auto routed_queries = static_cast<std::uint64_t>(
      static_cast<double>(shape_.test_size) * query_fraction);
  const std::uint64_t queries_per_server =
      ceil_div(std::max<std::uint64_t>(routed_queries, 1),
               serving_set.size());

  net::Simulator sim(topo, medium);
  std::vector<std::size_t> pending(topo.num_nodes(), 0);
  // Count, for each non-leaf node at/below a serving node, how many children
  // participate in the gather.
  std::vector<bool> participates(topo.num_nodes(), false);
  for (NodeId leaf : leaves) {
    NodeId cur = leaf;
    participates[cur] = true;
    while (cur != serving_of[leaf]) {
      cur = topo.parent(cur);
      participates[cur] = true;
    }
  }
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    if (!participates[id] || topo.is_leaf(id)) continue;
    for (NodeId kid : topo.children(id)) {
      if (participates[kid]) ++pending[id];
    }
  }

  auto node_work = [&](NodeId id) -> std::pair<SimTime, double> {
    const bool serving = std::find(serving_set.begin(), serving_set.end(),
                                   id) != serving_set.end();
    const net::Platform& plat = id == topo.root()
                                    ? net::hd_fpga_central()
                                    : net::edge_node();
    std::uint64_t macs = 0;
    const std::uint64_t d = dims[id];
    if (topo.is_leaf(id)) {
      const auto it = std::find(leaves.begin(), leaves.end(), id);
      const std::size_t n_i =
          shape_.partitions[static_cast<std::size_t>(it - leaves.begin())];
      macs += queries_per_server * d * sparse_window(n_i);
    } else {
      // Ternary projection: sign-conditional adds on the fabric's adder
      // lanes, ~4x cheaper than DSP multiply-accumulates.
      macs += queries_per_server * config_.projection_row_nnz * d / 4;
    }
    if (serving) {
      macs += queries_per_server * d * k;  // associative search
    }
    return {net::time_for_macs(plat, macs), plat.active_power_w};
  };

  std::function<void(NodeId)> process = [&](NodeId id) {
    const auto [dur, power] = node_work(id);
    const bool serving = std::find(serving_set.begin(), serving_set.end(),
                                   id) != serving_set.end();
    sim.compute(id, dur, power, [&, id, serving]() {
      if (serving) return;  // answers terminate here
      const NodeId parent = topo.parent(id);
      const std::uint64_t bytes =
          queries_per_server * compressed_query_bytes(dims[id]);
      sim.send(id, parent, bytes, [&, parent]() {
        if (--pending[parent] == 0) process(parent);
      });
    });
  };
  for (NodeId leaf : leaves) process(leaf);

  PhaseCosts costs;
  costs.time = sim.run();
  costs.energy_j = sim.total_energy_j();
  costs.bytes = sim.total_bytes_transferred();
  return costs;
}

namespace {

/// Fixed per-query host-side overhead (sensor read, user-space handling,
/// accelerator DMA) charged on every interactive query, on both the
/// centralized server and the EdgeHD serving node.
constexpr SimTime kHostOverhead = 1 * net::kMillisecond;

}  // namespace

net::SimTime CostModel::centralized_query_latency(
    const net::Topology& topo, const net::Medium& medium,
    const net::Platform& platform, std::uint64_t macs_per_query) const {
  const auto leaves = topo.leaves();
  SimTime slowest = 0;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const std::uint64_t bytes = hdc::wire_bytes_features(shape_.partitions[i]);
    const SimTime path = static_cast<SimTime>(topo.hops_to_root(leaves[i])) *
                         net::transfer_time(medium, bytes);
    slowest = std::max(slowest, path);
  }
  return kHostOverhead + slowest +
         net::time_for_macs(platform, macs_per_query);
}

net::SimTime CostModel::edgehd_query_latency(const net::Topology& topo,
                                             const net::Medium& medium,
                                             std::size_t level) const {
  if (level == 0 || level > topo.depth()) {
    throw std::invalid_argument("CostModel: inference level out of range");
  }
  const auto dims = node_dims(topo);
  const auto leaves = topo.leaves();

  // Serve at the level-`level` ancestor of the first leaf (deployments are
  // near-uniform, so any serving node is representative).
  net::NodeId server = leaves.front();
  while (topo.level(server) < level && server != topo.root()) {
    server = topo.parent(server);
  }

  // Slowest gather path from a leaf under the server: per-hop bipolar-query
  // transfer plus ternary projection at each gateway on the way.
  std::function<SimTime(net::NodeId)> gather = [&](net::NodeId id) -> SimTime {
    if (topo.is_leaf(id)) {
      const auto it = std::find(leaves.begin(), leaves.end(), id);
      const std::size_t n_i =
          shape_.partitions[static_cast<std::size_t>(it - leaves.begin())];
      return net::time_for_macs(net::edge_node(),
                                dims[id] * sparse_window(n_i));
    }
    SimTime slowest_child = 0;
    for (const net::NodeId kid : topo.children(id)) {
      const SimTime hop =
          gather(kid) +
          net::transfer_time(medium, hdc::wire_bytes_bipolar(dims[kid]));
      slowest_child = std::max(slowest_child, hop);
    }
    const SimTime projection = net::time_for_macs(
        net::edge_node(), config_.projection_row_nnz * dims[id] / 4);
    return slowest_child + projection;
  };

  const SimTime search = net::time_for_macs(
      net::edge_node(),
      static_cast<std::uint64_t>(dims[server]) * shape_.num_classes);
  return kHostOverhead + gather(server) + search;
}

ScenarioCosts CostModel::evaluate(Deployment dep, const net::Topology& topo,
                                  const net::Medium& medium) const {
  ScenarioCosts out;
  switch (dep) {
    case Deployment::kDnnGpu:
      out.train = centralized_train(topo, medium, net::dnn_gpu(),
                                    dnn_train_macs());
      out.infer = centralized_infer(topo, medium, net::dnn_gpu(),
                                    dnn_infer_macs_per_query());
      return out;
    case Deployment::kHdGpu:
      // The GPU runs the same EdgeHD algorithm, sparse encoder included.
      out.train = centralized_train(topo, medium, net::hd_gpu(),
                                    hd_central_train_macs(true));
      out.infer = centralized_infer(topo, medium, net::hd_gpu(),
                                    hd_central_infer_macs_per_query(true));
      return out;
    case Deployment::kHdFpga:
      out.train = centralized_train(topo, medium, net::hd_fpga_central(),
                                    hd_central_train_macs(true));
      out.infer = centralized_infer(topo, medium, net::hd_fpga_central(),
                                    hd_central_infer_macs_per_query(true));
      return out;
    case Deployment::kEdgeHd:
      out.train = edgehd_train(topo, medium);
      out.infer = edgehd_inference_routed(topo, medium);
      return out;
  }
  throw std::invalid_argument("CostModel: unknown deployment");
}

}  // namespace edgehd::core
