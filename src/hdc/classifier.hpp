// Class-hypervector classifier (paper Sections III-B and IV-D).
//
// Training bundles each class's encoded hypervectors into one integer
// accumulator per class ("class hypervector"). Retraining is the paper's
// perceptron-style pass: misclassified samples are added to the correct
// class and subtracted from the wrongly matched class, for a fixed number of
// epochs (20 suffices on every tested dataset, per the paper). Inference is
// nearest class hypervector by cosine similarity; a softmax over the
// similarities gives the confidence level used to route queries through the
// hierarchy. Online learning accumulates negative-feedback queries in
// per-class residual hypervectors that are applied (and propagated) in bulk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hypervector.hpp"
#include "kernels/packed.hpp"
#include "runtime/thread_pool.hpp"

namespace edgehd::hdc {

/// Result of one inference.
struct Prediction {
  std::size_t label = 0;             ///< index of the most similar class
  double confidence = 0.0;           ///< softmax weight of the winning class
  std::vector<double> similarities;  ///< cosine similarity per class
};

/// Tunables for HDClassifier.
struct ClassifierConfig {
  /// Softmax inverse temperature applied to cosine similarities when
  /// computing confidence. Cosine gaps between classes are small in high
  /// dimension, so a sharpening factor makes the confidence threshold
  /// (paper default 0.75) discriminative.
  double softmax_beta = 64.0;
  /// Retraining epochs ("repeating 20 iterations yields sufficient
  /// convergence for all the tested datasets").
  std::size_t retrain_epochs = 20;
};

/// Multi-class classifier over bipolar hypervectors.
class HDClassifier {
 public:
  HDClassifier(std::size_t num_classes, std::size_t dim,
               ClassifierConfig config = {});

  std::size_t num_classes() const noexcept { return classes_.size(); }
  std::size_t dim() const noexcept { return dim_; }
  const ClassifierConfig& config() const noexcept { return config_; }

  // ---- initial training -------------------------------------------------

  /// Bundles one encoded training sample into its class hypervector.
  void add_sample(std::size_t label, std::span<const std::int8_t> hv);

  /// Bundles a pre-accumulated hypervector (e.g. a batch hypervector or a
  /// child node's class hypervector) into a class accumulator.
  void add_accumulator(std::size_t label, std::span<const std::int32_t> acc);

  /// Bundles every (hv, label) pair into its class hypervector, fanning
  /// sample chunks over `pool`. Each chunk accumulates into private per-class
  /// partials which are merged into the model in ascending chunk order, so
  /// the result is bit-identical to the serial add_sample loop for any
  /// worker count (integer bundling is exact).
  void train_batch(std::span<const BipolarHV> hvs,
                   std::span<const std::size_t> labels,
                   runtime::ThreadPool& pool);

  // ---- retraining --------------------------------------------------------

  /// One perceptron pass over (hvs, labels): for each misclassified sample,
  /// adds it to the correct class and subtracts it from the predicted one.
  /// Returns the number of misclassifications observed during the pass.
  std::size_t retrain_epoch(std::span<const BipolarHV> hvs,
                            std::span<const std::size_t> labels);

  /// Runs retrain_epoch for config().retrain_epochs passes (or until an
  /// epoch makes no mistakes). Returns errors in the final epoch.
  std::size_t retrain(std::span<const BipolarHV> hvs,
                      std::span<const std::size_t> labels);

  /// Parallel perceptron epoch: the misclassification scan runs over `pool`
  /// against a snapshot of the epoch-start model, then the updates for every
  /// misclassified sample are applied serially in ascending sample order.
  /// This is the classic batch (synchronous) perceptron variant: unlike the
  /// serial retrain_epoch(), updates within an epoch do not affect later
  /// predictions in the same epoch — which is exactly what makes the result
  /// bit-identical for any worker count. Returns misclassifications seen.
  std::size_t retrain_epoch(std::span<const BipolarHV> hvs,
                            std::span<const std::size_t> labels,
                            runtime::ThreadPool& pool);

  /// Runs the parallel retrain_epoch for config().retrain_epochs passes
  /// (or until an epoch makes no mistakes); epochs stay serial with respect
  /// to each other. Returns errors in the final epoch.
  std::size_t retrain(std::span<const BipolarHV> hvs,
                      std::span<const std::size_t> labels,
                      runtime::ThreadPool& pool);

  // ---- inference ---------------------------------------------------------
  //
  // Inference runs on packed class memory: each class accumulator is
  // lazily decomposed into two's-complement bit planes (kernels::
  // PackedPlanes) with its norm cached, so a similarity scan is one
  // AND+popcount pass per plane instead of a D-wide multiply-accumulate
  // plus an O(D) norm recompute per query. The exact int64 plane dot equals
  // the historical double accumulation bit-for-bit (every partial sum is an
  // integer below 2^53), so similarities/predictions are unchanged.

  /// Cosine similarity of `query` to every class hypervector.
  std::vector<double> similarities(std::span<const std::int8_t> query) const;

  /// Similarities against a pre-packed query (callers that keep queries
  /// packed — batch predict, memoized test sets — skip the per-call pack).
  std::vector<double> similarities(const kernels::PackedQuery& query) const;

  /// Full prediction with confidence.
  Prediction predict(std::span<const std::int8_t> query) const;

  /// Prediction from a pre-packed query.
  Prediction predict(const kernels::PackedQuery& query) const;

  /// Predicts every query, fanning samples over `pool`. Per-sample work is
  /// the unchanged predict(), so results are bit-identical to the serial
  /// loop for any worker count; output order is input order.
  std::vector<Prediction> predict_batch(std::span<const BipolarHV> queries,
                                        runtime::ThreadPool& pool) const;

  /// Batched prediction over pre-packed queries.
  std::vector<Prediction> predict_batch(
      std::span<const kernels::PackedQuery> queries,
      runtime::ThreadPool& pool) const;

  /// Fraction of (hvs, labels) classified correctly.
  double accuracy(std::span<const BipolarHV> hvs,
                  std::span<const std::size_t> labels) const;

  /// Parallel accuracy: the per-sample checks fan over `pool`; the correct
  /// count reduces in fixed chunk order (integers, so exact). Identical to
  /// the serial accuracy() for any worker count.
  double accuracy(std::span<const BipolarHV> hvs,
                  std::span<const std::size_t> labels,
                  runtime::ThreadPool& pool) const;

  /// Parallel accuracy over pre-packed queries.
  double accuracy(std::span<const kernels::PackedQuery> queries,
                  std::span<const std::size_t> labels,
                  runtime::ThreadPool& pool) const;

  /// Builds every stale per-class cache entry (packed planes + norm) now.
  /// Called internally by every batch entry point before fanning work out;
  /// callers that invoke single-query predict()/similarities() from their
  /// own parallel loops must call this first — lazy rebuilds are not
  /// thread-safe.
  void warm_cache() const;

  // ---- online learning (negative feedback, Section IV-D) -----------------

  /// Records negative feedback: the model predicted `predicted_label` for
  /// `query` and the user rejected it. The query is bundled into the residual
  /// hypervector of the rejected class; nothing changes until residuals are
  /// applied.
  void feedback_negative(std::size_t predicted_label,
                         std::span<const std::int8_t> query);

  /// Applies local residuals (subtracts them from the class hypervectors)
  /// and clears them. Mirrors step (2) of Figure 5b.
  void apply_residuals();

  /// Moves the residual hypervectors out (leaving zeros), for propagation to
  /// the parent node — step (3) of Figure 5b.
  std::vector<AccumHV> take_residuals();

  /// Subtracts externally supplied residuals (e.g. hierarchically encoded
  /// residuals from children) from the class hypervectors.
  void apply_external_residuals(std::span<const AccumHV> residuals);

  /// True if any residual component is non-zero.
  bool has_pending_residuals() const noexcept;

  // ---- model access (hierarchy aggregation, serialization) ---------------

  const AccumHV& class_accumulator(std::size_t label) const;
  void set_class_accumulator(std::size_t label, AccumHV acc);

  // ---- adaptive dimensionality (DESIGN.md §14) ---------------------------

  /// Learner-aware per-dimension discrimination score: the variance across
  /// classes of the norm-scaled component c_i / ||c||. Dimensions whose
  /// components look the same in every class hypervector separate nothing —
  /// DistHD-style regeneration targets the lowest scores.
  std::vector<double> dimension_scores() const;

  /// Indices of the k lowest-scoring dimensions, ascending. Ties break to
  /// the lower index, so the pick is deterministic.
  std::vector<std::uint32_t> worst_dimensions(std::size_t k) const;

  /// Adds deltas[j] to component dims[j] of class `label` (ascending dims).
  /// When the class's packed-plane cache is warm and every new value still
  /// fits the current plane count, the planes are patched in place
  /// (kernels::update_plane_columns) and only the norm denominator is
  /// recomputed — no O(D·nplanes) rebuild; otherwise the cache entry is
  /// invalidated as usual.
  void add_to_dimensions(std::size_t label,
                         std::span<const std::uint32_t> dims,
                         std::span<const std::int32_t> deltas);

  /// Adds another classifier's class hypervectors into this model
  /// (dimension-preserving aggregation, e.g. STAR-topology merging).
  void merge(const HDClassifier& other);

 private:
  void check_label(std::size_t label) const;

  /// Marks one class's packed planes + cached norm stale (any mutation of
  /// classes_[label] must call this).
  void invalidate_cache(std::size_t label) noexcept;
  /// Marks every class stale.
  void invalidate_cache() noexcept;
  /// Rebuilds class `c`'s cache entry if stale. Single-threaded only.
  void ensure_cache(std::size_t c) const;

  /// Shared parallel perceptron epoch over pre-packed queries.
  std::size_t retrain_epoch_packed(std::span<const kernels::PackedQuery> packed,
                                   std::span<const BipolarHV> hvs,
                                   std::span<const std::size_t> labels,
                                   runtime::ThreadPool& pool);

  std::size_t dim_;
  ClassifierConfig config_;
  std::vector<AccumHV> classes_;    // one accumulator per class
  std::vector<AccumHV> residuals_;  // online-learning residual per class

  // Lazily rebuilt per-class inference cache: bit-plane packed accumulator
  // and the similarity denominator sqrt(dim) * ||class|| (so similarities()
  // stops recomputing sqrt(dot(c, c)) per query). `mutable` because warming
  // the cache is observably pure; uint8_t (not vector<bool>) so distinct
  // slots are distinct bytes.
  mutable std::vector<kernels::PackedPlanes> packed_classes_;
  mutable std::vector<double> denoms_;
  mutable std::vector<std::uint8_t> cache_valid_;
};

/// Softmax of `values` scaled by `beta`, returned as probabilities.
std::vector<double> softmax(std::span<const double> values, double beta);

/// HDClassifier::dimension_scores over a bare accumulator set (one AccumHV
/// per class, equal dims) — nodes without a hosted classifier score their
/// own class-accumulator state with the same statistic.
std::vector<double> dimension_scores(std::span<const AccumHV> accums);

/// The k lowest-scoring dimensions of `accums`, ascending, deterministic
/// tie-break to the lower index.
std::vector<std::uint32_t> worst_dimensions(std::span<const AccumHV> accums,
                                            std::size_t k);

}  // namespace edgehd::hdc
