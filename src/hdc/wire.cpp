#include "wire.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "kernels/packed.hpp"

namespace edgehd::hdc {

std::uint32_t bits_for_magnitude(std::int64_t max_magnitude) noexcept {
  if (max_magnitude < 0) max_magnitude = -max_magnitude;
  std::uint32_t bits = 1;  // sign bit
  std::uint64_t m = static_cast<std::uint64_t>(max_magnitude);
  while (m != 0) {
    ++bits;
    m >>= 1;
  }
  return std::max<std::uint32_t>(bits, 2);
}

std::uint64_t wire_bytes_accum(std::span<const std::int32_t> acc) noexcept {
  std::int64_t max_mag = 0;
  for (std::int32_t v : acc) {
    max_mag = std::max<std::int64_t>(max_mag, std::llabs(v));
  }
  return wire_bytes_accum(acc.size(), bits_for_magnitude(max_mag));
}

std::vector<std::uint8_t> pack_bipolar(std::span<const std::int8_t> hv) {
  // The packed kernel builds the identical bit layout (component i -> bit
  // i % 8 of byte i / 8) a word at a time, via the dispatched backend.
  const kernels::PackedHV p = kernels::pack_hv(hv);
  std::vector<std::uint8_t> out(wire_bytes_bipolar(hv.size()), 0);
  kernels::packed_to_bytes(p, out.data());
  return out;
}

BipolarHV unpack_bipolar(std::span<const std::uint8_t> bytes, std::size_t dim) {
  assert(bytes.size() >= wire_bytes_bipolar(dim));
  return kernels::unpack_hv(kernels::packed_from_bytes(bytes, dim));
}

}  // namespace edgehd::hdc
