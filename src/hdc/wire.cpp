#include "wire.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace edgehd::hdc {

std::uint32_t bits_for_magnitude(std::int64_t max_magnitude) noexcept {
  if (max_magnitude < 0) max_magnitude = -max_magnitude;
  std::uint32_t bits = 1;  // sign bit
  std::uint64_t m = static_cast<std::uint64_t>(max_magnitude);
  while (m != 0) {
    ++bits;
    m >>= 1;
  }
  return std::max<std::uint32_t>(bits, 2);
}

std::uint64_t wire_bytes_accum(std::span<const std::int32_t> acc) noexcept {
  std::int64_t max_mag = 0;
  for (std::int32_t v : acc) {
    max_mag = std::max<std::int64_t>(max_mag, std::llabs(v));
  }
  return wire_bytes_accum(acc.size(), bits_for_magnitude(max_mag));
}

std::vector<std::uint8_t> pack_bipolar(std::span<const std::int8_t> hv) {
  std::vector<std::uint8_t> out(wire_bytes_bipolar(hv.size()), 0);
  for (std::size_t i = 0; i < hv.size(); ++i) {
    if (hv[i] > 0) {
      out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  return out;
}

BipolarHV unpack_bipolar(std::span<const std::uint8_t> bytes, std::size_t dim) {
  assert(bytes.size() >= wire_bytes_bipolar(dim));
  BipolarHV out(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    const bool bit = (bytes[i / 8] >> (i % 8)) & 1u;
    out[i] = bit ? std::int8_t{1} : std::int8_t{-1};
  }
  return out;
}

}  // namespace edgehd::hdc
