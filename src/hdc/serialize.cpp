#include "serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "wire.hpp"

namespace edgehd::hdc {

namespace {

constexpr std::array<char, 4> kMagic{'E', 'H', 'D', '1'};
constexpr std::uint8_t kTagBipolar = 0x01;
constexpr std::uint8_t kTagAccum = 0x02;
constexpr std::uint8_t kTagClassifier = 0x03;

template <typename T>
void write_le(std::ostream& out, T value) {
  std::array<unsigned char, sizeof(T)> bytes;
  std::memcpy(bytes.data(), &value, sizeof(T));
  // The build targets little-endian platforms; memcpy preserves that.
  out.write(reinterpret_cast<const char*>(bytes.data()), sizeof(T));
}

template <typename T>
T read_le(std::istream& in) {
  std::array<unsigned char, sizeof(T)> bytes;
  in.read(reinterpret_cast<char*>(bytes.data()), sizeof(T));
  if (!in) {
    throw std::runtime_error("edgehd::serialize: truncated payload");
  }
  T value;
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

void write_header(std::ostream& out, std::uint8_t tag) {
  out.write(kMagic.data(), kMagic.size());
  write_le(out, tag);
}

void expect_header(std::istream& in, std::uint8_t tag) {
  std::array<char, 4> magic;
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("edgehd::serialize: bad magic");
  }
  const auto got = read_le<std::uint8_t>(in);
  if (got != tag) {
    throw std::runtime_error("edgehd::serialize: unexpected record tag");
  }
}

void write_accum_payload(std::ostream& out, const AccumHV& acc) {
  write_le(out, static_cast<std::uint64_t>(acc.size()));
  for (const std::int32_t v : acc) write_le(out, v);
}

AccumHV read_accum_payload(std::istream& in) {
  const auto dim = read_le<std::uint64_t>(in);
  AccumHV acc(dim);
  for (auto& v : acc) v = read_le<std::int32_t>(in);
  return acc;
}

}  // namespace

void save(std::ostream& out, const BipolarHV& hv) {
  write_header(out, kTagBipolar);
  write_le(out, static_cast<std::uint64_t>(hv.size()));
  const auto packed = pack_bipolar(hv);
  out.write(reinterpret_cast<const char*>(packed.data()),
            static_cast<std::streamsize>(packed.size()));
}

BipolarHV load_bipolar(std::istream& in) {
  expect_header(in, kTagBipolar);
  const auto dim = read_le<std::uint64_t>(in);
  std::vector<std::uint8_t> packed(wire_bytes_bipolar(dim));
  in.read(reinterpret_cast<char*>(packed.data()),
          static_cast<std::streamsize>(packed.size()));
  if (!in) {
    throw std::runtime_error("edgehd::serialize: truncated bipolar payload");
  }
  return unpack_bipolar(packed, dim);
}

void save(std::ostream& out, const AccumHV& acc) {
  write_header(out, kTagAccum);
  write_accum_payload(out, acc);
}

AccumHV load_accum(std::istream& in) {
  expect_header(in, kTagAccum);
  return read_accum_payload(in);
}

void save(std::ostream& out, const HDClassifier& clf) {
  write_header(out, kTagClassifier);
  write_le(out, static_cast<std::uint64_t>(clf.num_classes()));
  write_le(out, static_cast<std::uint64_t>(clf.dim()));
  write_le(out, clf.config().softmax_beta);
  write_le(out, static_cast<std::uint64_t>(clf.config().retrain_epochs));
  for (std::size_t c = 0; c < clf.num_classes(); ++c) {
    write_accum_payload(out, clf.class_accumulator(c));
  }
}

HDClassifier load_classifier(std::istream& in) {
  expect_header(in, kTagClassifier);
  const auto classes = read_le<std::uint64_t>(in);
  const auto dim = read_le<std::uint64_t>(in);
  ClassifierConfig cfg;
  cfg.softmax_beta = read_le<double>(in);
  cfg.retrain_epochs = read_le<std::uint64_t>(in);
  HDClassifier clf(classes, dim, cfg);
  for (std::size_t c = 0; c < classes; ++c) {
    auto acc = read_accum_payload(in);
    if (acc.size() != dim) {
      throw std::runtime_error("edgehd::serialize: class accum dim mismatch");
    }
    clf.set_class_accumulator(c, std::move(acc));
  }
  return clf;
}

void save_classifier_file(const std::string& path, const HDClassifier& clf) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("edgehd::serialize: cannot open " + path);
  }
  save(out, clf);
}

HDClassifier load_classifier_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("edgehd::serialize: cannot open " + path);
  }
  return load_classifier(in);
}

}  // namespace edgehd::hdc
