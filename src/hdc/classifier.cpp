#include "classifier.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/parallel.hpp"

namespace edgehd::hdc {

namespace {

/// Index of the most similar class (ties break to the lowest index, exactly
/// as std::max_element does in the serial paths).
std::size_t argmax(std::span<const double> sims) {
  return static_cast<std::size_t>(
      std::max_element(sims.begin(), sims.end()) - sims.begin());
}

struct ClassifierObs {
  obs::Counter predict_queries;
  obs::Counter train_samples;
  obs::Counter retrain_epochs;
  obs::Counter retrain_updates;

  static const ClassifierObs& get() {
    static const ClassifierObs o = [] {
      ClassifierObs c;
      if constexpr (obs::kEnabled) {
        auto& reg = obs::MetricsRegistry::global();
        c.predict_queries = reg.counter("hdc.predict.queries");
        c.train_samples = reg.counter("hdc.train.samples");
        c.retrain_epochs = reg.counter("hdc.retrain.epochs");
        c.retrain_updates = reg.counter("hdc.retrain.updates");
      }
      return c;
    }();
    return o;
  }
};

}  // namespace

std::vector<double> softmax(std::span<const double> values, double beta) {
  std::vector<double> out(values.size());
  if (values.empty()) return out;
  const double max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = std::exp(beta * (values[i] - max));
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

HDClassifier::HDClassifier(std::size_t num_classes, std::size_t dim,
                           ClassifierConfig config)
    : dim_(dim), config_(config) {
  if (num_classes < 2) {
    throw std::invalid_argument("HDClassifier: need at least two classes");
  }
  if (dim == 0) {
    throw std::invalid_argument("HDClassifier: dimensionality must be positive");
  }
  classes_.assign(num_classes, AccumHV(dim_, 0));
  residuals_.assign(num_classes, AccumHV(dim_, 0));
  packed_classes_.resize(num_classes);
  denoms_.assign(num_classes, 0.0);
  cache_valid_.assign(num_classes, 0);
}

void HDClassifier::check_label(std::size_t label) const {
  if (label >= classes_.size()) {
    throw std::out_of_range("HDClassifier: label out of range");
  }
}

void HDClassifier::invalidate_cache(std::size_t label) noexcept {
  cache_valid_[label] = 0;
}

void HDClassifier::invalidate_cache() noexcept {
  std::fill(cache_valid_.begin(), cache_valid_.end(), std::uint8_t{0});
}

void HDClassifier::ensure_cache(std::size_t c) const {
  if (cache_valid_[c] != 0) return;
  packed_classes_[c] = kernels::build_planes(classes_[c]);
  // Same denominator the historical per-query cosine computed: na * nb with
  // na = sqrt(dim), nb = ||class||. Cached once per model mutation.
  denoms_[c] = std::sqrt(static_cast<double>(dim_)) * norm(classes_[c]);
  cache_valid_[c] = 1;
}

void HDClassifier::warm_cache() const {
  for (std::size_t c = 0; c < classes_.size(); ++c) ensure_cache(c);
}

void HDClassifier::add_sample(std::size_t label,
                              std::span<const std::int8_t> hv) {
  check_label(label);
  bundle_into(classes_[label], hv);
  invalidate_cache(label);
}

void HDClassifier::add_accumulator(std::size_t label,
                                   std::span<const std::int32_t> acc) {
  check_label(label);
  accumulate(classes_[label], acc);
  invalidate_cache(label);
}

void HDClassifier::train_batch(std::span<const BipolarHV> hvs,
                               std::span<const std::size_t> labels,
                               runtime::ThreadPool& pool) {
  assert(hvs.size() == labels.size());
  for (std::size_t l : labels) check_label(l);

  ClassifierObs::get().train_samples.inc(hvs.size());
  const std::size_t k = classes_.size();
  const std::size_t grain = runtime::default_grain(hvs.size());
  const std::size_t chunks = runtime::chunk_count(hvs.size(), grain);

  // One set of per-class partial accumulators per chunk, merged below in
  // ascending chunk order. Integer addition is associative, so this equals
  // the serial add_sample loop bit-for-bit no matter the worker count.
  std::vector<std::vector<AccumHV>> partials(chunks);
  runtime::parallel_for_chunks(
      pool, hvs.size(),
      [&](std::size_t begin, std::size_t end) {
        auto& local = partials[begin / grain];
        local.assign(k, AccumHV(dim_, 0));
        for (std::size_t i = begin; i < end; ++i) {
          bundle_into(local[labels[i]], hvs[i]);
        }
      },
      grain);
  for (const auto& local : partials) {
    for (std::size_t c = 0; c < k; ++c) {
      accumulate(classes_[c], local[c]);
    }
  }
  invalidate_cache();
}

std::size_t HDClassifier::retrain_epoch(std::span<const BipolarHV> hvs,
                                        std::span<const std::size_t> labels) {
  assert(hvs.size() == labels.size());
  ClassifierObs::get().retrain_epochs.inc();
  std::size_t errors = 0;
  for (std::size_t i = 0; i < hvs.size(); ++i) {
    const auto sims = similarities(hvs[i]);
    const auto best = static_cast<std::size_t>(
        std::max_element(sims.begin(), sims.end()) - sims.begin());
    if (best != labels[i]) {
      ++errors;
      bundle_into(classes_[labels[i]], hvs[i]);
      unbundle_from(classes_[best], hvs[i]);
      invalidate_cache(labels[i]);
      invalidate_cache(best);
    }
  }
  ClassifierObs::get().retrain_updates.inc(errors);
  return errors;
}

std::size_t HDClassifier::retrain(std::span<const BipolarHV> hvs,
                                  std::span<const std::size_t> labels) {
  std::size_t errors = 0;
  for (std::size_t e = 0; e < config_.retrain_epochs; ++e) {
    errors = retrain_epoch(hvs, labels);
    if (errors == 0) break;
  }
  return errors;
}

std::size_t HDClassifier::retrain_epoch_packed(
    std::span<const kernels::PackedQuery> packed,
    std::span<const BipolarHV> hvs, std::span<const std::size_t> labels,
    runtime::ThreadPool& pool) {
  // Scan against the epoch-start model snapshot in parallel (cache warmed
  // up front so workers only read it)…
  ClassifierObs::get().retrain_epochs.inc();
  warm_cache();
  std::vector<std::size_t> predicted(packed.size());
  runtime::parallel_for(pool, packed.size(), [&](std::size_t i) {
    predicted[i] = argmax(similarities(packed[i]));
  });
  // …then apply perceptron updates serially, in ascending sample order.
  std::size_t errors = 0;
  for (std::size_t i = 0; i < packed.size(); ++i) {
    if (predicted[i] != labels[i]) {
      ++errors;
      bundle_into(classes_[labels[i]], hvs[i]);
      unbundle_from(classes_[predicted[i]], hvs[i]);
      invalidate_cache(labels[i]);
      invalidate_cache(predicted[i]);
    }
  }
  ClassifierObs::get().retrain_updates.inc(errors);
  return errors;
}

namespace {

/// Packs every query once, fanned over the pool (disjoint slots).
std::vector<kernels::PackedQuery> pack_queries(std::span<const BipolarHV> hvs,
                                               runtime::ThreadPool& pool) {
  std::vector<kernels::PackedQuery> packed(hvs.size());
  runtime::parallel_for(pool, hvs.size(), [&](std::size_t i) {
    packed[i] = kernels::pack_query(hvs[i]);
  });
  return packed;
}

}  // namespace

std::size_t HDClassifier::retrain_epoch(std::span<const BipolarHV> hvs,
                                        std::span<const std::size_t> labels,
                                        runtime::ThreadPool& pool) {
  assert(hvs.size() == labels.size());
  return retrain_epoch_packed(pack_queries(hvs, pool), hvs, labels, pool);
}

std::size_t HDClassifier::retrain(std::span<const BipolarHV> hvs,
                                  std::span<const std::size_t> labels,
                                  runtime::ThreadPool& pool) {
  // Queries are scanned every epoch but never change: pack once up front.
  const auto packed = pack_queries(hvs, pool);
  std::size_t errors = 0;
  for (std::size_t e = 0; e < config_.retrain_epochs; ++e) {
    errors = retrain_epoch_packed(packed, hvs, labels, pool);
    if (errors == 0) break;
  }
  return errors;
}

std::vector<double> HDClassifier::similarities(
    const kernels::PackedQuery& query) const {
  assert(query.dim == dim_);
  std::vector<double> sims(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    ensure_cache(c);
    if (denoms_[c] == 0.0) {
      sims[c] = 0.0;
      continue;
    }
    // Exact integer numerator (bit-plane popcount dot); double conversion
    // is exact while dim * max|class| < 2^53, so this equals the historical
    // element-wise double accumulation bit-for-bit.
    const std::int64_t d = kernels::planes_dot(query, packed_classes_[c]);
    sims[c] = static_cast<double>(d) / denoms_[c];
  }
  return sims;
}

std::vector<double> HDClassifier::similarities(
    std::span<const std::int8_t> query) const {
  assert(query.size() == dim_);
  return similarities(kernels::pack_query(query));
}

Prediction HDClassifier::predict(const kernels::PackedQuery& query) const {
  ClassifierObs::get().predict_queries.inc();
  Prediction p;
  p.similarities = similarities(query);
  const auto best = std::max_element(p.similarities.begin(), p.similarities.end());
  p.label = static_cast<std::size_t>(best - p.similarities.begin());
  const auto probs = softmax(p.similarities, config_.softmax_beta);
  p.confidence = probs[p.label];
  return p;
}

Prediction HDClassifier::predict(std::span<const std::int8_t> query) const {
  return predict(kernels::pack_query(query));
}

double HDClassifier::accuracy(std::span<const BipolarHV> hvs,
                              std::span<const std::size_t> labels) const {
  assert(hvs.size() == labels.size());
  if (hvs.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < hvs.size(); ++i) {
    const auto sims = similarities(hvs[i]);
    const auto best = static_cast<std::size_t>(
        std::max_element(sims.begin(), sims.end()) - sims.begin());
    if (best == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(hvs.size());
}

std::vector<Prediction> HDClassifier::predict_batch(
    std::span<const BipolarHV> queries, runtime::ThreadPool& pool) const {
  warm_cache();
  const runtime::BatchExecutor exec(pool);
  return exec.map(queries.size(), [&](std::size_t i) {
    return predict(kernels::pack_query(queries[i]));
  });
}

std::vector<Prediction> HDClassifier::predict_batch(
    std::span<const kernels::PackedQuery> queries,
    runtime::ThreadPool& pool) const {
  warm_cache();
  const runtime::BatchExecutor exec(pool);
  return exec.map(queries.size(),
                  [&](std::size_t i) { return predict(queries[i]); });
}

double HDClassifier::accuracy(std::span<const BipolarHV> hvs,
                              std::span<const std::size_t> labels,
                              runtime::ThreadPool& pool) const {
  assert(hvs.size() == labels.size());
  if (hvs.empty()) return 0.0;
  warm_cache();
  const runtime::BatchExecutor exec(pool);
  const std::size_t correct = exec.count_if(hvs.size(), [&](std::size_t i) {
    return argmax(similarities(kernels::pack_query(hvs[i]))) == labels[i];
  });
  return static_cast<double>(correct) / static_cast<double>(hvs.size());
}

double HDClassifier::accuracy(std::span<const kernels::PackedQuery> queries,
                              std::span<const std::size_t> labels,
                              runtime::ThreadPool& pool) const {
  assert(queries.size() == labels.size());
  if (queries.empty()) return 0.0;
  warm_cache();
  const runtime::BatchExecutor exec(pool);
  const std::size_t correct = exec.count_if(queries.size(), [&](std::size_t i) {
    return argmax(similarities(queries[i])) == labels[i];
  });
  return static_cast<double>(correct) / static_cast<double>(queries.size());
}

void HDClassifier::feedback_negative(std::size_t predicted_label,
                                     std::span<const std::int8_t> query) {
  check_label(predicted_label);
  bundle_into(residuals_[predicted_label], query);
}

void HDClassifier::apply_residuals() {
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    deaccumulate(classes_[c], residuals_[c]);
    std::fill(residuals_[c].begin(), residuals_[c].end(), 0);
  }
  invalidate_cache();
}

std::vector<AccumHV> HDClassifier::take_residuals() {
  std::vector<AccumHV> out = residuals_;
  for (auto& r : residuals_) std::fill(r.begin(), r.end(), 0);
  return out;
}

void HDClassifier::apply_external_residuals(std::span<const AccumHV> residuals) {
  if (residuals.size() != classes_.size()) {
    throw std::invalid_argument(
        "HDClassifier: residual count must equal class count");
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    deaccumulate(classes_[c], residuals[c]);
  }
  invalidate_cache();
}

bool HDClassifier::has_pending_residuals() const noexcept {
  for (const auto& r : residuals_) {
    for (std::int32_t v : r) {
      if (v != 0) return true;
    }
  }
  return false;
}

const AccumHV& HDClassifier::class_accumulator(std::size_t label) const {
  check_label(label);
  return classes_[label];
}

void HDClassifier::set_class_accumulator(std::size_t label, AccumHV acc) {
  check_label(label);
  if (acc.size() != dim_) {
    throw std::invalid_argument("HDClassifier: accumulator dimension mismatch");
  }
  classes_[label] = std::move(acc);
  invalidate_cache(label);
}

std::vector<double> HDClassifier::dimension_scores() const {
  return hdc::dimension_scores(classes_);
}

std::vector<std::uint32_t> HDClassifier::worst_dimensions(std::size_t k) const {
  return hdc::worst_dimensions(classes_, k);
}

void HDClassifier::add_to_dimensions(std::size_t label,
                                     std::span<const std::uint32_t> dims,
                                     std::span<const std::int32_t> deltas) {
  check_label(label);
  if (dims.size() != deltas.size()) {
    throw std::invalid_argument(
        "HDClassifier: dims/deltas length mismatch");
  }
  AccumHV& cls = classes_[label];
  for (std::size_t j = 0; j < dims.size(); ++j) {
    if (dims[j] >= dim_) {
      throw std::out_of_range("HDClassifier: patched dimension out of range");
    }
    cls[dims[j]] += deltas[j];
  }
  if (dims.empty()) return;
  if (cache_valid_[label] != 0) {
    // Try the in-place column patch. New values come from the already
    // updated accumulator so the planes stay an exact decomposition.
    std::vector<std::int32_t> vals(dims.size());
    for (std::size_t j = 0; j < dims.size(); ++j) vals[j] = cls[dims[j]];
    if (kernels::update_plane_columns(packed_classes_[label], dims, vals)) {
      // The denominator must be recomputed with the same index-ordered
      // double accumulation norm() uses — an incremental sum-of-squares
      // would not be bit-identical to a cold rebuild.
      denoms_[label] = std::sqrt(static_cast<double>(dim_)) * norm(cls);
      return;
    }
  }
  invalidate_cache(label);
}

void HDClassifier::merge(const HDClassifier& other) {
  if (other.num_classes() != num_classes() || other.dim() != dim()) {
    throw std::invalid_argument("HDClassifier: merge shape mismatch");
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    accumulate(classes_[c], other.classes_[c]);
  }
  invalidate_cache();
}

std::vector<double> dimension_scores(std::span<const AccumHV> accums) {
  if (accums.empty()) return {};
  const std::size_t dim = accums[0].size();
  const auto k = static_cast<double>(accums.size());
  std::vector<double> inv_norms(accums.size());
  for (std::size_t c = 0; c < accums.size(); ++c) {
    if (accums[c].size() != dim) {
      throw std::invalid_argument(
          "dimension_scores: accumulator dimension mismatch");
    }
    const double n = norm(accums[c]);
    inv_norms[c] = n == 0.0 ? 0.0 : 1.0 / n;
  }
  std::vector<double> scores(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    double mean = 0.0;
    for (std::size_t c = 0; c < accums.size(); ++c) {
      mean += static_cast<double>(accums[c][i]) * inv_norms[c];
    }
    mean /= k;
    double var = 0.0;
    for (std::size_t c = 0; c < accums.size(); ++c) {
      const double d = static_cast<double>(accums[c][i]) * inv_norms[c] - mean;
      var += d * d;
    }
    scores[i] = var / k;
  }
  return scores;
}

std::vector<std::uint32_t> worst_dimensions(std::span<const AccumHV> accums,
                                            std::size_t k) {
  const std::vector<double> scores = dimension_scores(accums);
  std::vector<std::uint32_t> idx(scores.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<std::uint32_t>(i);
  }
  const std::size_t take = std::min(k, idx.size());
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(take), idx.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      if (scores[a] != scores[b]) return scores[a] < scores[b];
                      return a < b;
                    });
  idx.resize(take);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace edgehd::hdc
