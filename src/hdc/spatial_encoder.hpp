// Fractional-power ("phasor") spatial encoder for 2-D images
// (paper Section III-A, opening construction).
//
// Axis base hypervectors are unit phasors B_x = e^{i*theta_x / w_x} with
// theta ~ N(0,1)^D. Raising a base to the (real) power X rotates each phase
// by X*theta/w, and the expected inner product between two positions
// converges, as D grows, to the Gaussian kernel of their distance:
//
//   <B_x^X1, B_x^X2> / D  →  k((X1 - X2)/w_x).
//
// A pixel at (X, Y) is represented by the binding B_x^X * B_y^Y (element-wise
// complex product), weighted by its value, and the image hypervector is the
// bundle (sum) over pixels. Nearby pixels therefore stay correlated, which
// preserves spatial structure through the encoding.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "hypervector.hpp"
#include "runtime/thread_pool.hpp"

namespace edgehd::hdc {

/// Complex (phasor) hypervector.
using PhasorHV = std::vector<std::complex<float>>;

/// Fractional-power encoder over a 2-D pixel grid.
class SpatialEncoder {
 public:
  /// @param width,height image size in pixels
  /// @param dim          hypervector dimensionality D
  /// @param seed         master seed for the axis phase vectors
  /// @param length_scale kernel length scale w (same for both axes)
  SpatialEncoder(std::size_t width, std::size_t height, std::size_t dim,
                 std::uint64_t seed, float length_scale = 1.0F);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }

  /// Phasor hypervector for position (x, y); accepts fractional coordinates.
  PhasorHV position(float x, float y) const;

  /// Encodes a row-major image of width*height pixel values into the bundled
  /// phasor hypervector V_F = sum_{X,Y} P_{X,Y} * B_x^X * B_y^Y.
  PhasorHV encode(std::span<const float> pixels) const;

  /// Encodes a batch of images, fanning samples over `pool`. Bit-identical
  /// to the serial loop for any worker count (per-sample work is unchanged);
  /// results are in input order.
  std::vector<PhasorHV> encode_batch(
      std::span<const std::vector<float>> images,
      runtime::ThreadPool& pool) const;

  /// Binarizes a phasor hypervector by the sign of its real part, producing
  /// the bipolar form used by the classifier.
  static BipolarHV binarize_real(const PhasorHV& hv);

  /// Normalized inner product Re(<a, conj(b)>) / D between two phasor
  /// hypervectors; for position hypervectors this approximates the Gaussian
  /// kernel of their distance.
  static double similarity(const PhasorHV& a, const PhasorHV& b);

 private:
  std::size_t width_;
  std::size_t height_;
  std::size_t dim_;
  float inv_scale_;
  std::vector<float> theta_x_;  // D phases for the x axis
  std::vector<float> theta_y_;  // D phases for the y axis
};

}  // namespace edgehd::hdc
