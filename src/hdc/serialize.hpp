// Binary serialization of hypervectors and trained models.
//
// Model exchange is the core network operation of EdgeHD — children upload
// class hypervectors, parents push updated models down — so the library
// ships a compact, versioned binary format usable both for network framing
// and for persisting trained models to disk. Bipolar hypervectors travel
// packed at 1 bit/dimension; accumulators as little-endian int32.
//
// Format (all integers little-endian):
//   [magic "EHD1"] [tag u8] [payload...]
// tags: 0x01 bipolar hv  (u64 dim, packed bits)
//       0x02 accum hv    (u64 dim, i32 * dim)
//       0x03 classifier  (u64 classes, u64 dim, f64 beta, u64 epochs,
//                         then classes accum payloads)
#pragma once

#include <iosfwd>
#include <string>

#include "classifier.hpp"
#include "hypervector.hpp"

namespace edgehd::hdc {

/// Writes a bipolar hypervector (bit-packed).
void save(std::ostream& out, const BipolarHV& hv);
/// Writes an integer accumulator hypervector.
void save(std::ostream& out, const AccumHV& acc);
/// Writes a trained classifier (class hypervectors + config; pending
/// residuals are NOT serialized — apply or take them first).
void save(std::ostream& out, const HDClassifier& clf);

/// Reads back what the corresponding save() wrote. Throws
/// std::runtime_error on bad magic, wrong tag or truncated payload.
BipolarHV load_bipolar(std::istream& in);
AccumHV load_accum(std::istream& in);
HDClassifier load_classifier(std::istream& in);

/// Convenience: file-path wrappers around the stream API.
void save_classifier_file(const std::string& path, const HDClassifier& clf);
HDClassifier load_classifier_file(const std::string& path);

}  // namespace edgehd::hdc
