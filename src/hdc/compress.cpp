#include "compress.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "random.hpp"

namespace edgehd::hdc {

HvCompressor::HvCompressor(std::size_t dim, std::size_t capacity,
                           std::uint64_t seed)
    : dim_(dim), capacity_(capacity) {
  if (dim == 0 || capacity == 0) {
    throw std::invalid_argument("HvCompressor: dim and capacity must be positive");
  }
  Rng rng(derive_seed(seed, 0));
  positions_ = rng.sign_vector(dim_ * capacity_);
}

std::span<const std::int8_t> HvCompressor::position(std::size_t i) const {
  if (i >= capacity_) {
    throw std::out_of_range("HvCompressor: position index out of range");
  }
  return {positions_.data() + i * dim_, dim_};
}

AccumHV HvCompressor::compress(std::span<const BipolarHV> hvs) const {
  if (hvs.size() > capacity_) {
    throw std::invalid_argument("HvCompressor: bundle exceeds capacity");
  }
  AccumHV out(dim_, 0);
  for (std::size_t i = 0; i < hvs.size(); ++i) {
    assert(hvs[i].size() == dim_);
    const std::int8_t* p = positions_.data() + i * dim_;
    for (std::size_t d = 0; d < dim_; ++d) {
      out[d] += p[d] * hvs[i][d];
    }
  }
  return out;
}

BipolarHV HvCompressor::decompress(std::span<const std::int32_t> compressed,
                                   std::size_t i) const {
  assert(compressed.size() == dim_);
  if (i >= capacity_) {
    throw std::out_of_range("HvCompressor: member index out of range");
  }
  const std::int8_t* p = positions_.data() + i * dim_;
  BipolarHV out(dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    // Unbinding: P_i * P_i = 1 restores the signal term, other members stay
    // key-scrambled and act as zero-mean noise.
    const std::int32_t v = compressed[d] * p[d];
    out[d] = v < 0 ? std::int8_t{-1} : std::int8_t{1};
  }
  return out;
}

double HvCompressor::expected_bit_error(std::size_t k) {
  if (k <= 1) return 0.0;
  // Cross-talk noise per component is a sum of k-1 fair +-1 terms; a sign
  // flip needs |noise| to exceed the unit signal. Gaussian approximation of
  // the tail: P(flip) ~= 1 - Phi(1 / sqrt(k-1)).
  const double z = 1.0 / std::sqrt(static_cast<double>(k - 1));
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

}  // namespace edgehd::hdc
