// Portable scalar backend — the semantic ground truth every SIMD backend
// must match bit-for-bit. Compiled with -ffp-contract=off so the float
// accumulation order (ascending index, separate multiply and add roundings)
// is exactly what the table documents, on every architecture.
#include <bit>
#include <cstdint>

#include "kernels.hpp"

namespace edgehd::hdc::kernels {

namespace {

std::uint64_t popcount_words_scalar(const std::uint64_t* w, std::size_t words) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(w[i]));
  }
  return total;
}

std::uint64_t xor_popcount_scalar(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t words) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

std::int64_t planes_dot_scalar(const std::uint64_t* pos,
                               const std::uint64_t* neg,
                               const std::uint64_t* planes, std::size_t words,
                               std::size_t nplanes) {
  std::int64_t dot = 0;
  for (std::size_t b = 0; b < nplanes; ++b) {
    const std::uint64_t* plane = planes + b * words;
    std::int64_t bal = 0;  // popcount(pos & plane) - popcount(neg & plane)
    for (std::size_t i = 0; i < words; ++i) {
      bal += std::popcount(pos[i] & plane[i]);
      bal -= std::popcount(neg[i] & plane[i]);
    }
    const std::int64_t weight = std::int64_t{1} << b;
    dot += b + 1 == nplanes ? -weight * bal : weight * bal;
  }
  return dot;
}

void pack_signs_scalar(const std::int8_t* v, std::size_t n, std::uint64_t* pos,
                       std::uint64_t* neg) {
  const std::size_t words = packed_words(n);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t p = 0;
    std::uint64_t m = 0;
    const std::size_t end = (w + 1) * 64 < n ? (w + 1) * 64 : n;
    for (std::size_t i = w * 64; i < end; ++i) {
      const std::uint64_t bit = std::uint64_t{1} << (i % 64);
      if (v[i] > 0) p |= bit;
      if (v[i] < 0) m |= bit;
    }
    pos[w] = p;
    if (neg != nullptr) neg[w] = m;
  }
}

void gemv_f32_scalar(const float* blocked, std::size_t rows, std::size_t cols,
                     const float* x, float* out) {
  constexpr std::size_t kLane = BlockedMatrixF32::kLane;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* w = blocked + (r / kLane) * cols * kLane + (r % kLane);
    float acc = 0.0F;
    for (std::size_t j = 0; j < cols; ++j) acc += w[j * kLane] * x[j];
    out[r] = acc;
  }
}

void gemm_f32_scalar(const float* blocked, std::size_t rows, std::size_t cols,
                     const float* const* xs, float* const* outs,
                     std::size_t count) {
  for (std::size_t s = 0; s < count; ++s) {
    gemv_f32_scalar(blocked, rows, cols, xs[s], outs[s]);
  }
}

void sparse_gemv_f32_scalar(const float* blocked, const std::uint32_t* starts,
                            std::size_t rows, std::size_t window,
                            const float* xx, float* out) {
  constexpr std::size_t kLane = BlockedMatrixF32::kLane;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* w = blocked + (r / kLane) * window * kLane + (r % kLane);
    const float* f = xx + starts[r];
    float acc = 0.0F;
    for (std::size_t j = 0; j < window; ++j) acc += w[j * kLane] * f[j];
    out[r] = acc;
  }
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table = {
      "scalar",          popcount_words_scalar, xor_popcount_scalar,
      planes_dot_scalar, pack_signs_scalar,     gemv_f32_scalar,
      gemm_f32_scalar,   sparse_gemv_f32_scalar,
  };
  return table;
}

}  // namespace edgehd::hdc::kernels
