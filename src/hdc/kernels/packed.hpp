// Packed-word hypervector representations for the popcount compute path.
//
// Three packed forms, all sharing the wire.cpp bit layout (component i ->
// bit i % 64 of word i / 64, little-endian bytes on the wire):
//
//   * PackedHV     — one bit per component of a strictly bipolar
//                    hypervector (+1 -> 1, -1 -> 0). XOR+popcount gives
//                    hamming/dot (SHEARer-style binary inference).
//   * PackedQuery  — two masks (pos / neg) so the tri-state "silence"
//                    convention of degraded operation (zero components from
//                    crashed subtrees, Figure-12 erasures) is representable:
//                    a zero component sets neither bit and contributes
//                    nothing to any dot product, exactly like the scalar
//                    multiply-accumulate.
//   * PackedPlanes — an int32 class accumulator decomposed into
//                    two's-complement bit planes; sum_i a_i * c_i collapses
//                    to one AND+popcount pass per plane per mask, which is
//                    what makes classifier predict popcount-bound.
//
// All conversions are deterministic and exact; dot products computed on the
// packed forms equal the scalar int64 reference bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "../hypervector.hpp"
#include "kernels.hpp"

namespace edgehd::hdc::kernels {

/// A strictly bipolar hypervector at 1 bit per component.
struct PackedHV {
  std::size_t dim = 0;
  std::vector<std::uint64_t> words;
};

/// A possibly tri-state query: pos/neg sign masks (zero components set
/// neither bit).
struct PackedQuery {
  std::size_t dim = 0;
  std::vector<std::uint64_t> pos;
  std::vector<std::uint64_t> neg;
};

/// An int32 accumulator as `nplanes` two's-complement bit planes
/// (plane-major: plane b occupies words [b * packed_words(dim), ...)).
struct PackedPlanes {
  std::size_t dim = 0;
  std::size_t nplanes = 0;
  std::vector<std::uint64_t> planes;
};

/// Packs a bipolar hypervector (components > 0 set the bit; zeros and
/// negatives clear it — callers needing zeros preserved use pack_query).
PackedHV pack_hv(std::span<const std::int8_t> hv);

/// Inverse of pack_hv: set bit -> +1, clear bit -> -1.
BipolarHV unpack_hv(const PackedHV& p);

/// Packs a tri-state query into pos/neg sign masks.
PackedQuery pack_query(std::span<const std::int8_t> hv);

/// Dot product of two packed strictly-bipolar hypervectors:
/// dim - 2 * popcount(a XOR b). Equals hdc::dot on the unpacked vectors.
std::int64_t packed_dot(const PackedHV& a, const PackedHV& b);

/// Normalized hamming distance in [0, 1]; 0 for empty vectors.
double packed_hamming(const PackedHV& a, const PackedHV& b);

/// Decomposes an int32 accumulator into bit planes. The plane count is
/// wire.cpp's bits_for_magnitude(max |acc_i|) — the same width the wire
/// codec would ship the accumulator at.
PackedPlanes build_planes(std::span<const std::int32_t> acc);

/// sum_i q_i * acc_i as exact int64 (the classifier's similarity numerator).
std::int64_t planes_dot(const PackedQuery& q, const PackedPlanes& p);

/// In-place column update: sets component dims[j] of the packed accumulator
/// to vals[j] without rebuilding the planes (a DimensionPatch touches k << D
/// columns). All-or-nothing: returns false — leaving `p` untouched — when
/// any value does not fit `p.nplanes`-bit two's complement, in which case
/// the caller must rebuild via build_planes (the plane count can only be
/// chosen from the full accumulator).
bool update_plane_columns(PackedPlanes& p, std::span<const std::uint32_t> dims,
                          std::span<const std::int32_t> vals);

/// Serializes packed words to the wire byte layout (little-endian words,
/// identical bytes to wire.cpp's pack_bipolar). `out` must hold
/// (dim + 7) / 8 bytes.
void packed_to_bytes(const PackedHV& p, std::uint8_t* out);

/// Rebuilds a PackedHV from wire bytes (inverse of packed_to_bytes; padding
/// bits in the final word are zeroed).
PackedHV packed_from_bytes(std::span<const std::uint8_t> bytes,
                           std::size_t dim);

}  // namespace edgehd::hdc::kernels
