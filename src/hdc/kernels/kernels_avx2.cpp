// x86-64 AVX2 backend. This TU (and only this TU) is compiled with
// -mavx2 -mpopcnt; dispatch.cpp selects it at runtime via cpuid, so the rest
// of the binary stays runnable on any x86-64.
//
// Bit-identity with the scalar reference:
//  * integer kernels (popcounts, bit-plane dots, sign packing) are exact —
//    there is only one right answer;
//  * float kernels vectorize across OUTPUT rows (one row per lane), so each
//    output element accumulates in the same ascending-j order as the scalar
//    loop, with separate _mm256_mul_ps / _mm256_add_ps roundings (-mfma is
//    deliberately not enabled and -ffp-contract=off keeps the compiler from
//    fusing them).
#include "kernels.hpp"

#if defined(__x86_64__) && defined(__AVX2__) && !defined(EDGEHD_DISABLE_SIMD)

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace edgehd::hdc::kernels {

namespace {

/// Per-64-bit-lane popcounts of a 256-bit vector (Mula's nibble-LUT +
/// _mm256_sad_epu8 algorithm).
inline __m256i popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::uint64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

std::uint64_t popcount_words_avx2(const std::uint64_t* w, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, popcount256(v));
  }
  std::uint64_t total = hsum_epi64(acc);
  for (; i < words; ++i) total += static_cast<std::uint64_t>(_mm_popcnt_u64(w[i]));
  return total;
}

std::uint64_t xor_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount256(_mm256_xor_si256(va, vb)));
  }
  std::uint64_t total = hsum_epi64(acc);
  for (; i < words; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] ^ b[i]));
  }
  return total;
}

std::int64_t planes_dot_avx2(const std::uint64_t* pos, const std::uint64_t* neg,
                             const std::uint64_t* planes, std::size_t words,
                             std::size_t nplanes) {
  std::int64_t dot = 0;
  for (std::size_t b = 0; b < nplanes; ++b) {
    const std::uint64_t* plane = planes + b * words;
    __m256i acc_p = _mm256_setzero_si256();
    __m256i acc_n = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= words; i += 4) {
      const __m256i c =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(plane + i));
      const __m256i p =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pos + i));
      const __m256i n =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(neg + i));
      acc_p = _mm256_add_epi64(acc_p, popcount256(_mm256_and_si256(p, c)));
      acc_n = _mm256_add_epi64(acc_n, popcount256(_mm256_and_si256(n, c)));
    }
    std::int64_t bal = static_cast<std::int64_t>(hsum_epi64(acc_p)) -
                       static_cast<std::int64_t>(hsum_epi64(acc_n));
    for (; i < words; ++i) {
      bal += _mm_popcnt_u64(pos[i] & plane[i]);
      bal -= _mm_popcnt_u64(neg[i] & plane[i]);
    }
    const std::int64_t weight = std::int64_t{1} << b;
    dot += b + 1 == nplanes ? -weight * bal : weight * bal;
  }
  return dot;
}

void pack_signs_avx2(const std::int8_t* v, std::size_t n, std::uint64_t* pos,
                     std::uint64_t* neg) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t w = 0;
  // 64 components per iteration: two 32-byte compares + movemask each.
  for (; (w + 1) * 64 <= n; ++w) {
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + w * 64));
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + w * 64 + 32));
    const auto p_lo = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpgt_epi8(lo, zero)));
    const auto p_hi = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpgt_epi8(hi, zero)));
    pos[w] = static_cast<std::uint64_t>(p_lo) |
             (static_cast<std::uint64_t>(p_hi) << 32);
    if (neg != nullptr) {
      const auto n_lo = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpgt_epi8(zero, lo)));
      const auto n_hi = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpgt_epi8(zero, hi)));
      neg[w] = static_cast<std::uint64_t>(n_lo) |
               (static_cast<std::uint64_t>(n_hi) << 32);
    }
  }
  if (w * 64 < n) {  // tail word, bit by bit
    std::uint64_t p = 0;
    std::uint64_t m = 0;
    for (std::size_t i = w * 64; i < n; ++i) {
      const std::uint64_t bit = std::uint64_t{1} << (i % 64);
      if (v[i] > 0) p |= bit;
      if (v[i] < 0) m |= bit;
    }
    pos[w] = p;
    if (neg != nullptr) neg[w] = m;
  }
}

void gemv_f32_avx2(const float* blocked, std::size_t rows, std::size_t cols,
                   const float* x, float* out) {
  constexpr std::size_t kLane = BlockedMatrixF32::kLane;
  const std::size_t full = rows / kLane;
  for (std::size_t blk = 0; blk < full; ++blk) {
    const float* w = blocked + blk * cols * kLane;
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t j = 0; j < cols; ++j) {
      const __m256 wv = _mm256_loadu_ps(w + j * kLane);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, _mm256_set1_ps(x[j])));
    }
    _mm256_storeu_ps(out + blk * kLane, acc);
  }
  for (std::size_t r = full * kLane; r < rows; ++r) {  // tail rows, scalar
    const float* w = blocked + (r / kLane) * cols * kLane + (r % kLane);
    float acc = 0.0F;
    for (std::size_t j = 0; j < cols; ++j) acc += w[j * kLane] * x[j];
    out[r] = acc;
  }
}

void gemm_f32_avx2(const float* blocked, std::size_t rows, std::size_t cols,
                   const float* const* xs, float* const* outs,
                   std::size_t count) {
  constexpr std::size_t kLane = BlockedMatrixF32::kLane;
  const std::size_t full = rows / kLane;
  std::size_t s = 0;
  // Blocks of 4 samples share each loaded weight vector (4x fewer W loads);
  // per-sample arithmetic is untouched.
  for (; s + 4 <= count; s += 4) {
    const float* x0 = xs[s];
    const float* x1 = xs[s + 1];
    const float* x2 = xs[s + 2];
    const float* x3 = xs[s + 3];
    for (std::size_t blk = 0; blk < full; ++blk) {
      const float* w = blocked + blk * cols * kLane;
      __m256 a0 = _mm256_setzero_ps();
      __m256 a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps();
      __m256 a3 = _mm256_setzero_ps();
      for (std::size_t j = 0; j < cols; ++j) {
        const __m256 wv = _mm256_loadu_ps(w + j * kLane);
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(wv, _mm256_set1_ps(x0[j])));
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(wv, _mm256_set1_ps(x1[j])));
        a2 = _mm256_add_ps(a2, _mm256_mul_ps(wv, _mm256_set1_ps(x2[j])));
        a3 = _mm256_add_ps(a3, _mm256_mul_ps(wv, _mm256_set1_ps(x3[j])));
      }
      _mm256_storeu_ps(outs[s] + blk * kLane, a0);
      _mm256_storeu_ps(outs[s + 1] + blk * kLane, a1);
      _mm256_storeu_ps(outs[s + 2] + blk * kLane, a2);
      _mm256_storeu_ps(outs[s + 3] + blk * kLane, a3);
    }
    for (std::size_t r = full * kLane; r < rows; ++r) {
      const float* w = blocked + (r / kLane) * cols * kLane + (r % kLane);
      float b0 = 0.0F, b1 = 0.0F, b2 = 0.0F, b3 = 0.0F;
      for (std::size_t j = 0; j < cols; ++j) {
        const float wj = w[j * kLane];
        b0 += wj * x0[j];
        b1 += wj * x1[j];
        b2 += wj * x2[j];
        b3 += wj * x3[j];
      }
      outs[s][r] = b0;
      outs[s + 1][r] = b1;
      outs[s + 2][r] = b2;
      outs[s + 3][r] = b3;
    }
  }
  for (; s < count; ++s) gemv_f32_avx2(blocked, rows, cols, xs[s], outs[s]);
}

void sparse_gemv_f32_avx2(const float* blocked, const std::uint32_t* starts,
                          std::size_t rows, std::size_t window,
                          const float* xx, float* out) {
  constexpr std::size_t kLane = BlockedMatrixF32::kLane;
  const std::size_t full = rows / kLane;
  for (std::size_t blk = 0; blk < full; ++blk) {
    const float* w = blocked + blk * window * kLane;
    __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(starts + blk * kLane));
    __m256 acc = _mm256_setzero_ps();
    const __m256i one = _mm256_set1_epi32(1);
    for (std::size_t j = 0; j < window; ++j) {
      const __m256 f = _mm256_i32gather_ps(xx, idx, 4);
      const __m256 wv = _mm256_loadu_ps(w + j * kLane);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, f));
      idx = _mm256_add_epi32(idx, one);
    }
    _mm256_storeu_ps(out + blk * kLane, acc);
  }
  for (std::size_t r = full * kLane; r < rows; ++r) {
    const float* w = blocked + (r / kLane) * window * kLane + (r % kLane);
    const float* f = xx + starts[r];
    float acc = 0.0F;
    for (std::size_t j = 0; j < window; ++j) acc += w[j * kLane] * f[j];
    out[r] = acc;
  }
}

const KernelTable kAvx2Table = {
    "avx2",          popcount_words_avx2, xor_popcount_avx2,
    planes_dot_avx2, pack_signs_avx2,     gemv_f32_avx2,
    gemm_f32_avx2,   sparse_gemv_f32_avx2,
};

}  // namespace

const KernelTable* avx2_table() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Table : nullptr;
}

}  // namespace edgehd::hdc::kernels

#else  // AVX2 not compiled in

namespace edgehd::hdc::kernels {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace edgehd::hdc::kernels

#endif
