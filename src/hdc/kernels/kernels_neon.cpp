// aarch64 NEON backend. NEON is baseline on aarch64, so no extra compile
// flags or runtime probe are needed — the table is available whenever the
// build targets aarch64 (and EDGEHD_DISABLE_SIMD is off).
//
// Same bit-identity rules as the AVX2 TU: integer kernels are exact; float
// kernels vectorize across output rows (4 per 128-bit lane group) with
// separate vmulq/vaddq roundings and -ffp-contract=off, so no fused
// multiply-add sneaks in.
#include "kernels.hpp"

#if defined(__aarch64__) && !defined(EDGEHD_DISABLE_SIMD)

#include <arm_neon.h>

#include <bit>
#include <cstdint>

namespace edgehd::hdc::kernels {

namespace {

std::uint64_t popcount_words_neon(const std::uint64_t* w, std::size_t words) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint8x16_t v = vld1q_u8(reinterpret_cast<const std::uint8_t*>(w + i));
    total += vaddvq_u8(vcntq_u8(v));
  }
  for (; i < words; ++i) total += static_cast<std::uint64_t>(std::popcount(w[i]));
  return total;
}

std::uint64_t xor_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint8x16_t va = vld1q_u8(reinterpret_cast<const std::uint8_t*>(a + i));
    const uint8x16_t vb = vld1q_u8(reinterpret_cast<const std::uint8_t*>(b + i));
    total += vaddvq_u8(vcntq_u8(veorq_u8(va, vb)));
  }
  for (; i < words; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

std::int64_t planes_dot_neon(const std::uint64_t* pos, const std::uint64_t* neg,
                             const std::uint64_t* planes, std::size_t words,
                             std::size_t nplanes) {
  std::int64_t dot = 0;
  for (std::size_t b = 0; b < nplanes; ++b) {
    const std::uint64_t* plane = planes + b * words;
    std::int64_t bal = 0;
    std::size_t i = 0;
    for (; i + 2 <= words; i += 2) {
      const uint8x16_t c =
          vld1q_u8(reinterpret_cast<const std::uint8_t*>(plane + i));
      const uint8x16_t p =
          vld1q_u8(reinterpret_cast<const std::uint8_t*>(pos + i));
      const uint8x16_t n =
          vld1q_u8(reinterpret_cast<const std::uint8_t*>(neg + i));
      bal += vaddvq_u8(vcntq_u8(vandq_u8(p, c)));
      bal -= vaddvq_u8(vcntq_u8(vandq_u8(n, c)));
    }
    for (; i < words; ++i) {
      bal += std::popcount(pos[i] & plane[i]);
      bal -= std::popcount(neg[i] & plane[i]);
    }
    const std::int64_t weight = std::int64_t{1} << b;
    dot += b + 1 == nplanes ? -weight * bal : weight * bal;
  }
  return dot;
}

void pack_signs_neon(const std::int8_t* v, std::size_t n, std::uint64_t* pos,
                     std::uint64_t* neg) {
  // Per-byte sign tests vectorize trivially; bit compaction is cheapest via
  // the scalar bit loop on NEON (no movemask equivalent), which is still
  // exact and fast enough — packing is O(D) against the O(D * B) dot scans.
  const std::size_t words = packed_words(n);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t p = 0;
    std::uint64_t m = 0;
    const std::size_t end = (w + 1) * 64 < n ? (w + 1) * 64 : n;
    for (std::size_t i = w * 64; i < end; ++i) {
      const std::uint64_t bit = std::uint64_t{1} << (i % 64);
      if (v[i] > 0) p |= bit;
      if (v[i] < 0) m |= bit;
    }
    pos[w] = p;
    if (neg != nullptr) neg[w] = m;
  }
}

void gemv_f32_neon(const float* blocked, std::size_t rows, std::size_t cols,
                   const float* x, float* out) {
  constexpr std::size_t kLane = BlockedMatrixF32::kLane;
  const std::size_t full = rows / kLane;
  for (std::size_t blk = 0; blk < full; ++blk) {
    const float* w = blocked + blk * cols * kLane;
    float32x4_t lo = vdupq_n_f32(0.0F);
    float32x4_t hi = vdupq_n_f32(0.0F);
    for (std::size_t j = 0; j < cols; ++j) {
      const float32x4_t xv = vdupq_n_f32(x[j]);
      lo = vaddq_f32(lo, vmulq_f32(vld1q_f32(w + j * kLane), xv));
      hi = vaddq_f32(hi, vmulq_f32(vld1q_f32(w + j * kLane + 4), xv));
    }
    vst1q_f32(out + blk * kLane, lo);
    vst1q_f32(out + blk * kLane + 4, hi);
  }
  for (std::size_t r = full * kLane; r < rows; ++r) {
    const float* w = blocked + (r / kLane) * cols * kLane + (r % kLane);
    float acc = 0.0F;
    for (std::size_t j = 0; j < cols; ++j) acc += w[j * kLane] * x[j];
    out[r] = acc;
  }
}

void gemm_f32_neon(const float* blocked, std::size_t rows, std::size_t cols,
                   const float* const* xs, float* const* outs,
                   std::size_t count) {
  for (std::size_t s = 0; s < count; ++s) {
    gemv_f32_neon(blocked, rows, cols, xs[s], outs[s]);
  }
}

void sparse_gemv_f32_neon(const float* blocked, const std::uint32_t* starts,
                          std::size_t rows, std::size_t window,
                          const float* xx, float* out) {
  // No gather on NEON: rows run scalar over the blocked layout (sequential
  // j per row, same order as every other backend).
  constexpr std::size_t kLane = BlockedMatrixF32::kLane;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* w = blocked + (r / kLane) * window * kLane + (r % kLane);
    const float* f = xx + starts[r];
    float acc = 0.0F;
    for (std::size_t j = 0; j < window; ++j) acc += w[j * kLane] * f[j];
    out[r] = acc;
  }
}

const KernelTable kNeonTable = {
    "neon",          popcount_words_neon, xor_popcount_neon,
    planes_dot_neon, pack_signs_neon,     gemv_f32_neon,
    gemm_f32_neon,   sparse_gemv_f32_neon,
};

}  // namespace

const KernelTable* neon_table() { return &kNeonTable; }

}  // namespace edgehd::hdc::kernels

#else  // not aarch64

namespace edgehd::hdc::kernels {
const KernelTable* neon_table() { return nullptr; }
}  // namespace edgehd::hdc::kernels

#endif
