// Runtime backend selection. Resolved once (first call to active()), from:
//   1. EDGEHD_KERNEL env var: "scalar" forces the reference backend, "simd"
//      forces the SIMD backend (falling back to scalar if the binary or CPU
//      lacks one), anything else / unset means "auto";
//   2. what this binary carries (the AVX2 TU is compiled only on x86-64,
//      NEON only on aarch64, neither under -DEDGEHD_DISABLE_SIMD=ON);
//   3. what the CPU reports (cpuid for AVX2; NEON is baseline on aarch64).
//
// Because every backend is bit-identical, the choice is observable only as
// speed — EDGEHD_KERNEL=scalar|simd is the supported A/B switch.
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels.hpp"
#include "obs/metrics.hpp"

namespace edgehd::hdc::kernels {

// Defined in kernels_avx2.cpp / kernels_neon.cpp; null when the backend is
// not compiled in or the CPU lacks the ISA.
const KernelTable* avx2_table();
const KernelTable* neon_table();

const KernelTable* simd_table() {
  if (const KernelTable* t = avx2_table()) return t;
  if (const KernelTable* t = neon_table()) return t;
  return nullptr;
}

namespace {

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* pick() {
  const char* env = std::getenv("EDGEHD_KERNEL");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return &scalar_table();
  }
  // "simd", "auto", or unset: best available.
  if (const KernelTable* t = simd_table()) return t;
  return &scalar_table();
}

/// Tags the resolved backend in the metrics registry, so every metrics dump
/// records which kernel implementation produced its numbers.
void publish_backend(const KernelTable* t) {
  obs::MetricsRegistry::global().set_label("hdc.kernel.backend", t->name);
}

}  // namespace

const KernelTable& active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign race: concurrent first calls compute the same table.
    t = pick();
    g_active.store(t, std::memory_order_release);
    publish_backend(t);
  }
  return *t;
}

const char* backend_name() { return active().name; }

bool force_backend(Backend b) {
  if (b == Backend::kScalar) {
    g_active.store(&scalar_table(), std::memory_order_release);
    publish_backend(&scalar_table());
    return true;
  }
  if (const KernelTable* t = simd_table()) {
    g_active.store(t, std::memory_order_release);
    publish_backend(t);
    return true;
  }
  g_active.store(&scalar_table(), std::memory_order_release);
  publish_backend(&scalar_table());
  return false;
}

}  // namespace edgehd::hdc::kernels
