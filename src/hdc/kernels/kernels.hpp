// Compute kernels for the HDC hot path, with runtime CPU dispatch.
//
// Every EdgeHD operation bottoms out in three inner loops — the encoder's
// D x n projection (GEMV/GEMM), the bipolar dot/bundle algebra, and the
// classifier's per-query similarity scan. This layer provides those loops as
// a table of function pointers with three interchangeable backends:
//
//   * scalar — portable C++ reference, the semantic ground truth;
//   * avx2   — x86-64 AVX2 (compiled into its own TU with -mavx2, selected
//              at runtime via cpuid);
//   * neon   — aarch64 NEON (baseline ISA on that architecture).
//
// The hard contract: every backend is BIT-IDENTICAL to the scalar reference,
// floats included. Integer kernels are exact by construction (popcounts and
// two's-complement sums have one value). Float kernels preserve the scalar
// accumulation order by vectorizing across *outputs* (8 GEMV rows at a time,
// one row per SIMD lane), never across the reduction index, and are compiled
// with -ffp-contract=off so no backend fuses multiply-add. This is what lets
// EDGEHD_KERNEL be a pure speed knob under PR 1's determinism contract:
// models, predictions, and protocol byte counts do not change with the
// backend, the worker count, or the build's -march.
//
// Dispatch is resolved once, at first use: EDGEHD_KERNEL=scalar|simd
// overrides; "auto" (default) picks the best backend the CPU supports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edgehd::hdc::kernels {

/// Resolved dispatch target.
enum class Backend : std::uint8_t { kScalar, kSimd };

/// Words needed for `dim` packed components.
constexpr std::size_t packed_words(std::size_t dim) noexcept {
  return (dim + 63) / 64;
}

/// The kernel function table. All pointers are non-null in every table.
///
/// Bit-packed layout (shared with wire.cpp): component i lives in bit
/// (i % 64) of word (i / 64); on the wire the same bits appear as
/// little-endian bytes. Padding bits past `dim` are zero.
struct KernelTable {
  const char* name;  ///< "scalar", "avx2", or "neon"

  /// Total popcount of `words` 64-bit words.
  std::uint64_t (*popcount_words)(const std::uint64_t* w, std::size_t words);

  /// popcount(a XOR b) over `words` words (hamming mismatches of two packed
  /// strictly-bipolar hypervectors).
  std::uint64_t (*xor_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words);

  /// Bit-plane dot product: returns sum_i a_i * c_i where the query a is
  /// given as two masks (pos: bit set where a_i = +1, neg: bit set where
  /// a_i = -1; components that are neither — the "silence" convention —
  /// contribute nothing) and the int32 accumulator c is given as `nplanes`
  /// two's-complement bit planes of `words` words each, plane-major. Plane b
  /// carries weight 2^b, except the top plane which carries -2^(nplanes-1).
  /// Exact int64 arithmetic, identical in every backend.
  std::int64_t (*planes_dot)(const std::uint64_t* pos,
                             const std::uint64_t* neg,
                             const std::uint64_t* planes, std::size_t words,
                             std::size_t nplanes);

  /// Packs sign masks of an int8 vector: bit i of pos = (v[i] > 0), bit i of
  /// neg = (v[i] < 0). `neg` may be null. Padding bits are zeroed. Both
  /// outputs must hold (n + 63) / 64 words.
  void (*pack_signs)(const std::int8_t* v, std::size_t n, std::uint64_t* pos,
                     std::uint64_t* neg);

  /// Dense GEMV over the 8-row-interleaved blocked layout (BlockedMatrixF32):
  /// out[r] = sum_j W[r][j] * x[j], accumulated in ascending j with separate
  /// multiply and add roundings (the scalar reference order) for every row.
  void (*gemv_f32)(const float* blocked, std::size_t rows, std::size_t cols,
                   const float* x, float* out);

  /// Batched GEMV (the encode_batch matrix-matrix product): outs[s][r] =
  /// sum_j W[r][j] * xs[s][j] for s in [0, count). Per-(s, r) accumulation
  /// order is exactly gemv_f32's; sample blocking only changes locality.
  void (*gemm_f32)(const float* blocked, std::size_t rows, std::size_t cols,
                   const float* const* xs, float* const* outs,
                   std::size_t count);

  /// Sparse contiguous-window GEMV (SparseRbfEncoder rows): out[r] =
  /// sum_j W[r][j] * xx[starts[r] + j], where xx is the feature vector
  /// doubled ([x, x], length 2n) so wrapped windows read contiguously.
  void (*sparse_gemv_f32)(const float* blocked, const std::uint32_t* starts,
                          std::size_t rows, std::size_t window,
                          const float* xx, float* out);
};

/// The portable reference table. Always available.
const KernelTable& scalar_table();

/// The best SIMD table this binary carries AND this CPU supports, or null
/// (no AVX2 at runtime, non-x86/arm build, or -DEDGEHD_DISABLE_SIMD=ON).
const KernelTable* simd_table();

/// The dispatch-selected table: resolved once from EDGEHD_KERNEL
/// ("scalar" | "simd" | "auto"/unset) and the CPU, then cached.
const KernelTable& active();

/// Name of the active backend ("scalar", "avx2", "neon").
const char* backend_name();

/// Swaps the active table (test/bench A/B hook). Returns false — and leaves
/// the scalar table active — when kSimd is requested but unavailable. Not
/// safe to call while other threads are inside kernel calls.
bool force_backend(Backend b);

/// Row-major D x n matrix repacked into 8-row-interleaved blocks so SIMD
/// GEMV assigns one row per lane: element (r, c) lives at
/// data[(r / 8) * cols * 8 + c * 8 + (r % 8)]. Padding rows (when rows % 8
/// != 0) are zero-filled and never written to outputs.
class BlockedMatrixF32 {
 public:
  static constexpr std::size_t kLane = 8;

  BlockedMatrixF32() = default;
  BlockedMatrixF32(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        data_(((rows + kLane - 1) / kLane) * cols * kLane, 0.0F) {}

  static BlockedMatrixF32 from_row_major(const float* src, std::size_t rows,
                                         std::size_t cols) {
    BlockedMatrixF32 m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) m.at(r, c) = src[r * cols + c];
    }
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  const float* data() const noexcept { return data_.data(); }

  float& at(std::size_t r, std::size_t c) noexcept {
    return data_[(r / kLane) * cols_ * kLane + c * kLane + (r % kLane)];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    return data_[(r / kLane) * cols_ * kLane + c * kLane + (r % kLane)];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace edgehd::hdc::kernels
