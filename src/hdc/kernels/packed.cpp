#include "packed.hpp"

#include <cassert>
#include <stdexcept>

#include "../wire.hpp"
#include "kernels.hpp"

namespace edgehd::hdc::kernels {

PackedHV pack_hv(std::span<const std::int8_t> hv) {
  PackedHV p;
  p.dim = hv.size();
  p.words.assign(packed_words(p.dim), 0);
  if (p.dim != 0) {
    active().pack_signs(hv.data(), p.dim, p.words.data(), nullptr);
  }
  return p;
}

BipolarHV unpack_hv(const PackedHV& p) {
  BipolarHV out(p.dim);
  for (std::size_t i = 0; i < p.dim; ++i) {
    const bool bit = (p.words[i / 64] >> (i % 64)) & 1U;
    out[i] = bit ? std::int8_t{1} : std::int8_t{-1};
  }
  return out;
}

PackedQuery pack_query(std::span<const std::int8_t> hv) {
  PackedQuery q;
  q.dim = hv.size();
  const std::size_t words = packed_words(q.dim);
  q.pos.assign(words, 0);
  q.neg.assign(words, 0);
  if (q.dim != 0) {
    active().pack_signs(hv.data(), q.dim, q.pos.data(), q.neg.data());
  }
  return q;
}

std::int64_t packed_dot(const PackedHV& a, const PackedHV& b) {
  assert(a.dim == b.dim);
  const std::uint64_t mismatches =
      active().xor_popcount(a.words.data(), b.words.data(), a.words.size());
  return static_cast<std::int64_t>(a.dim) -
         2 * static_cast<std::int64_t>(mismatches);
}

double packed_hamming(const PackedHV& a, const PackedHV& b) {
  assert(a.dim == b.dim);
  if (a.dim == 0) return 0.0;
  const std::uint64_t mismatches =
      active().xor_popcount(a.words.data(), b.words.data(), a.words.size());
  return static_cast<double>(mismatches) / static_cast<double>(a.dim);
}

PackedPlanes build_planes(std::span<const std::int32_t> acc) {
  PackedPlanes p;
  p.dim = acc.size();
  std::int64_t max_mag = 0;
  for (std::int32_t v : acc) {
    const std::int64_t m = v < 0 ? -static_cast<std::int64_t>(v)
                                 : static_cast<std::int64_t>(v);
    if (m > max_mag) max_mag = m;
  }
  // The wire codec's width rule: sign bit + magnitude bits, min 2. Any
  // accumulator value then fits nplanes-bit two's complement.
  p.nplanes = bits_for_magnitude(max_mag);
  const std::size_t words = packed_words(p.dim);
  p.planes.assign(p.nplanes * words, 0);
  for (std::size_t i = 0; i < p.dim; ++i) {
    // Sign-extend through 64 bits: nplanes can reach 33 for accumulators
    // near the int32 limits, and the high planes of a negative value must
    // read the replicated sign bit.
    const auto u =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(acc[i]));
    const std::uint64_t bit = std::uint64_t{1} << (i % 64);
    for (std::size_t b = 0; b < p.nplanes; ++b) {
      if ((u >> b) & 1U) p.planes[b * words + i / 64] |= bit;
    }
  }
  return p;
}

std::int64_t planes_dot(const PackedQuery& q, const PackedPlanes& p) {
  if (q.dim != p.dim) {
    throw std::invalid_argument("planes_dot: dimension mismatch");
  }
  if (q.dim == 0) return 0;
  return active().planes_dot(q.pos.data(), q.neg.data(), p.planes.data(),
                             packed_words(q.dim), p.nplanes);
}

bool update_plane_columns(PackedPlanes& p, std::span<const std::uint32_t> dims,
                          std::span<const std::int32_t> vals) {
  assert(dims.size() == vals.size());
  if (p.nplanes == 0 && !dims.empty()) return false;
  for (std::size_t j = 0; j < dims.size(); ++j) {
    assert(dims[j] < p.dim);
    // v fits iff its bits above plane nplanes-1 are all copies of the sign
    // bit, i.e. the arithmetic shift by nplanes-1 yields 0 or -1.
    const auto v = static_cast<std::int64_t>(vals[j]);
    const std::int64_t high = v >> (p.nplanes - 1);
    if (high != 0 && high != -1) return false;
  }
  const std::size_t words = packed_words(p.dim);
  for (std::size_t j = 0; j < dims.size(); ++j) {
    const std::size_t i = dims[j];
    const auto u =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(vals[j]));
    const std::uint64_t bit = std::uint64_t{1} << (i % 64);
    for (std::size_t b = 0; b < p.nplanes; ++b) {
      std::uint64_t& w = p.planes[b * words + i / 64];
      if ((u >> b) & 1U) {
        w |= bit;
      } else {
        w &= ~bit;
      }
    }
  }
  return true;
}

void packed_to_bytes(const PackedHV& p, std::uint8_t* out) {
  const std::size_t bytes = (p.dim + 7) / 8;
  for (std::size_t k = 0; k < bytes; ++k) {
    out[k] = static_cast<std::uint8_t>(p.words[k / 8] >> (8 * (k % 8)));
  }
}

PackedHV packed_from_bytes(std::span<const std::uint8_t> bytes,
                           std::size_t dim) {
  assert(bytes.size() >= (dim + 7) / 8);
  PackedHV p;
  p.dim = dim;
  p.words.assign(packed_words(dim), 0);
  const std::size_t nbytes = (dim + 7) / 8;
  for (std::size_t k = 0; k < nbytes; ++k) {
    p.words[k / 8] |= static_cast<std::uint64_t>(bytes[k]) << (8 * (k % 8));
  }
  if (dim % 64 != 0 && !p.words.empty()) {  // zero the padding bits
    p.words.back() &= (std::uint64_t{1} << (dim % 64)) - 1;
  }
  return p;
}

}  // namespace edgehd::hdc::kernels
