#include "encoder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "random.hpp"
#include "runtime/batch_executor.hpp"

namespace edgehd::hdc {

namespace {

constexpr float kTwoPi = 2.0F * std::numbers::pi_v<float>;

}  // namespace

RealHV Encoder::encode_real(std::span<const float> features) const {
  const BipolarHV hv = encode(features);
  RealHV out(hv.size());
  std::transform(hv.begin(), hv.end(), out.begin(),
                 [](std::int8_t v) { return static_cast<float>(v); });
  return out;
}

std::vector<BipolarHV> Encoder::encode_batch(
    std::span<const std::vector<float>> features,
    runtime::ThreadPool& pool) const {
  const runtime::BatchExecutor exec(pool);
  return exec.map(features.size(),
                  [&](std::size_t i) { return encode(features[i]); });
}

std::vector<BipolarHV> Encoder::encode_batch(
    std::span<const std::vector<float>> features) const {
  return encode_batch(features, runtime::ThreadPool::global());
}

// ---------------------------------------------------------------- RbfEncoder

RbfEncoder::RbfEncoder(std::size_t input_dim, std::size_t dim,
                       std::uint64_t seed, float length_scale, RbfForm form)
    : input_dim_(input_dim), dim_(dim), form_(form) {
  if (input_dim == 0 || dim == 0) {
    throw std::invalid_argument("RbfEncoder: dimensions must be positive");
  }
  if (length_scale < 0.0F) {
    throw std::invalid_argument("RbfEncoder: length_scale must be >= 0");
  }
  if (length_scale == 0.0F) {
    // 2*sqrt(n) keeps the kernel wide enough to average out per-feature
    // noise while still resolving feature interactions (validated across the
    // Table-I workloads; see bench_ablation_encoding).
    length_scale = 2.0F * std::sqrt(static_cast<float>(input_dim));
  }
  Rng proj_rng(derive_seed(seed, 0));
  Rng bias_rng(derive_seed(seed, 1));
  const float scale = 1.0F / length_scale;
  projection_.resize(dim_ * input_dim_);
  for (auto& w : projection_) w = proj_rng.gaussian() * scale;
  bias_.resize(dim_);
  for (auto& b : bias_) b = bias_rng.uniform(0.0F, kTwoPi);
}

RealHV RbfEncoder::encode_real(std::span<const float> features) const {
  assert(features.size() == input_dim_);
  RealHV out(dim_);
  const float amp = std::sqrt(2.0F / static_cast<float>(dim_));
  for (std::size_t i = 0; i < dim_; ++i) {
    const float* row = projection_.data() + i * input_dim_;
    float proj = 0.0F;
    for (std::size_t j = 0; j < input_dim_; ++j) proj += row[j] * features[j];
    out[i] = form_ == RbfForm::kCosSin
                 ? std::cos(proj + bias_[i]) * std::sin(proj)
                 : amp * std::cos(proj + bias_[i]);
  }
  return out;
}

BipolarHV RbfEncoder::encode(std::span<const float> features) const {
  return binarize(encode_real(features));
}

// ---------------------------------------------------------- SparseRbfEncoder

SparseRbfEncoder::SparseRbfEncoder(std::size_t input_dim, std::size_t dim,
                                   std::uint64_t seed, float sparsity,
                                   float length_scale)
    : input_dim_(input_dim), dim_(dim) {
  if (input_dim == 0 || dim == 0) {
    throw std::invalid_argument("SparseRbfEncoder: dimensions must be positive");
  }
  if (sparsity < 0.0F || sparsity >= 1.0F) {
    throw std::invalid_argument("SparseRbfEncoder: sparsity must be in [0, 1)");
  }
  if (length_scale < 0.0F) {
    throw std::invalid_argument("SparseRbfEncoder: length_scale must be >= 0");
  }
  const auto raw =
      static_cast<std::size_t>(std::lround((1.0F - sparsity) * input_dim));
  window_ = std::clamp<std::size_t>(raw, 1, input_dim_);
  if (length_scale == 0.0F) {
    length_scale = 2.0F * std::sqrt(static_cast<float>(window_));
  }

  Rng w_rng(derive_seed(seed, 0));
  Rng b_rng(derive_seed(seed, 1));
  Rng s_rng(derive_seed(seed, 2));
  const float scale = 1.0F / length_scale;
  weights_.resize(dim_ * window_);
  for (auto& w : weights_) w = w_rng.gaussian() * scale;
  bias_.resize(dim_);
  for (auto& b : bias_) b = b_rng.uniform(0.0F, kTwoPi);
  start_.resize(dim_);
  for (auto& s : start_) s = static_cast<std::uint32_t>(s_rng.index(input_dim_));
}

RealHV SparseRbfEncoder::encode_real(std::span<const float> features) const {
  assert(features.size() == input_dim_);
  RealHV out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    const float* row = weights_.data() + i * window_;
    std::size_t f = start_[i];
    float proj = 0.0F;
    for (std::size_t j = 0; j < window_; ++j) {
      proj += row[j] * features[f];
      if (++f == input_dim_) f = 0;  // contiguous window, wrapping
    }
    out[i] = std::cos(proj + bias_[i]) * std::sin(proj);
  }
  return out;
}

BipolarHV SparseRbfEncoder::encode(std::span<const float> features) const {
  return binarize(encode_real(features));
}

// --------------------------------------------------------- LinearLevelEncoder

LinearLevelEncoder::LinearLevelEncoder(std::size_t input_dim, std::size_t dim,
                                       std::uint64_t seed, std::size_t levels,
                                       float lo, float hi)
    : input_dim_(input_dim), dim_(dim), levels_(levels), lo_(lo), hi_(hi) {
  if (input_dim == 0 || dim == 0 || levels < 2) {
    throw std::invalid_argument(
        "LinearLevelEncoder: need positive dims and >= 2 levels");
  }
  if (!(lo < hi)) {
    throw std::invalid_argument("LinearLevelEncoder: require lo < hi");
  }
  Rng id_rng(derive_seed(seed, 0));
  ids_.resize(input_dim_ * dim_);
  for (auto& v : ids_) v = id_rng.sign();

  // Correlated level hypervectors: start from a random HV and flip a fixed
  // random subset of D/(levels-1) fresh positions per step, so hamming
  // distance grows linearly with level separation.
  levels_hv_.assign(levels_ * dim_, 0);
  Rng lvl_rng(derive_seed(seed, 1));
  std::vector<std::int8_t> current = lvl_rng.sign_vector(dim_);
  std::copy(current.begin(), current.end(), levels_hv_.begin());
  std::vector<std::size_t> order(dim_);
  for (std::size_t i = 0; i < dim_; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), lvl_rng.engine());
  const std::size_t flips_per_step = dim_ / (levels_ - 1);
  std::size_t cursor = 0;
  for (std::size_t l = 1; l < levels_; ++l) {
    for (std::size_t k = 0; k < flips_per_step && cursor < dim_; ++k, ++cursor) {
      current[order[cursor]] = static_cast<std::int8_t>(-current[order[cursor]]);
    }
    std::copy(current.begin(), current.end(), levels_hv_.begin() + l * dim_);
  }
}

BipolarHV LinearLevelEncoder::encode(std::span<const float> features) const {
  assert(features.size() == input_dim_);
  AccumHV acc(dim_, 0);
  const float range = hi_ - lo_;
  for (std::size_t f = 0; f < input_dim_; ++f) {
    const float clamped = std::clamp(features[f], lo_, hi_);
    const auto level = std::min<std::size_t>(
        static_cast<std::size_t>((clamped - lo_) / range * (levels_ - 1) + 0.5F),
        levels_ - 1);
    const std::int8_t* id = ids_.data() + f * dim_;
    const std::int8_t* lvl = levels_hv_.data() + level * dim_;
    for (std::size_t i = 0; i < dim_; ++i) acc[i] += id[i] * lvl[i];
  }
  return binarize(acc);
}

// ---------------------------------------------------------------- factories

std::unique_ptr<Encoder> make_encoder(EncoderKind kind, std::size_t input_dim,
                                      std::size_t dim, std::uint64_t seed) {
  switch (kind) {
    case EncoderKind::kRbfDense:
      return std::make_unique<RbfEncoder>(input_dim, dim, seed);
    case EncoderKind::kRbfSparse:
      return std::make_unique<SparseRbfEncoder>(input_dim, dim, seed);
    case EncoderKind::kLinearLevel:
      return std::make_unique<LinearLevelEncoder>(input_dim, dim, seed);
  }
  throw std::invalid_argument("make_encoder: unknown encoder kind");
}

}  // namespace edgehd::hdc
