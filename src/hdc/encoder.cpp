#include "encoder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "random.hpp"
#include "runtime/batch_executor.hpp"

namespace edgehd::hdc {

namespace {

constexpr float kTwoPi = 2.0F * std::numbers::pi_v<float>;

struct EncoderObs {
  obs::Counter batches;
  obs::Counter batch_samples;
  obs::Histogram batch_ns;  ///< wall clock — registered volatile

  static const EncoderObs& get() {
    static const EncoderObs o = [] {
      EncoderObs e;
      if constexpr (obs::kEnabled) {
        auto& reg = obs::MetricsRegistry::global();
        e.batches = reg.counter("hdc.encode.batches");
        e.batch_samples = reg.counter("hdc.encode.batch_samples");
        // 1 µs .. ~1 s in decade-ish steps.
        e.batch_ns = reg.histogram(
            "hdc.encode.batch_ns",
            {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9},
            /*stable=*/false);
      }
      return e;
    }();
    return o;
  }
};

/// Counts one encode_batch call; the timer feeds the latency histogram on
/// scope exit.
struct BatchScope {
  explicit BatchScope(std::size_t samples)
      : timer(EncoderObs::get().batch_ns) {
    EncoderObs::get().batches.inc();
    EncoderObs::get().batch_samples.inc(samples);
  }
  obs::ScopedTimerNs timer;
};

/// Per-thread float scratch, resized on demand. Shared by every encoder on
/// the thread — contents never outlive one call.
std::vector<float>& scratch_f32(std::size_t n) {
  static thread_local std::vector<float> buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

std::vector<float>& scratch2_f32(std::size_t n) {
  static thread_local std::vector<float> buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

/// Per-thread scratch for chunk-materialized projection rows (sized by the
/// provider's block()); a separate buffer so it can coexist with the
/// projection scratch within one encode call.
std::vector<float>& scratch_rows_f32() {
  static thread_local std::vector<float> buf;
  return buf;
}

std::vector<std::uint32_t>& scratch_u32(std::size_t n) {
  static thread_local std::vector<std::uint32_t> buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

}  // namespace

RealHV Encoder::encode_real(std::span<const float> features) const {
  const BipolarHV hv = encode(features);
  RealHV out(hv.size());
  std::transform(hv.begin(), hv.end(), out.begin(),
                 [](std::int8_t v) { return static_cast<float>(v); });
  return out;
}

std::vector<BipolarHV> Encoder::encode_batch(
    std::span<const std::vector<float>> features,
    runtime::ThreadPool& pool) const {
  const BatchScope scope(features.size());
  const runtime::BatchExecutor exec(pool);
  return exec.map(features.size(),
                  [&](std::size_t i) { return encode(features[i]); });
}

std::vector<BipolarHV> Encoder::encode_batch(
    std::span<const std::vector<float>> features) const {
  return encode_batch(features, runtime::ThreadPool::global());
}

void Encoder::regenerate_dimensions(std::span<const std::uint32_t> /*dims*/) {
  throw std::logic_error(
      "Encoder: dimension regeneration is not supported by this encoder");
}

void Encoder::encode_dims(std::span<const float> features,
                          std::span<const std::uint32_t> dims,
                          std::span<std::int8_t> out) const {
  assert(out.size() >= dims.size());
  const BipolarHV full = encode(features);
  for (std::size_t j = 0; j < dims.size(); ++j) out[j] = full[dims[j]];
}

// ---------------------------------------------------------------- RbfEncoder

RbfEncoder::RbfEncoder(std::size_t input_dim, std::size_t dim,
                       std::uint64_t seed, float length_scale, RbfForm form,
                       ProjectionMode mode)
    : input_dim_(input_dim), dim_(dim), form_(form), mode_(mode) {
  if (input_dim == 0 || dim == 0) {
    throw std::invalid_argument("RbfEncoder: dimensions must be positive");
  }
  if (length_scale < 0.0F) {
    throw std::invalid_argument("RbfEncoder: length_scale must be >= 0");
  }
  if (length_scale == 0.0F) {
    // 2*sqrt(n) keeps the kernel wide enough to average out per-feature
    // noise while still resolving feature interactions (validated across the
    // Table-I workloads; see bench_ablation_encoding).
    length_scale = 2.0F * std::sqrt(static_cast<float>(input_dim));
  }
  const float scale = 1.0F / length_scale;
  // Stream index 3: 0/1 feed the legacy sequential draws, keeping the
  // counter-derived rows an independent stream under the same seed.
  const std::uint64_t stream_base = derive_seed(seed, 3);
  if (mode == ProjectionMode::kStored) {
    Rng proj_rng(derive_seed(seed, 0));
    Rng bias_rng(derive_seed(seed, 1));
    // Draw in row-major order (the historical draw order, so projections are
    // unchanged for a given seed), then repack into the blocked kernel layout.
    std::vector<float> row_major(dim_ * input_dim_);
    for (auto& w : row_major) w = proj_rng.gaussian() * scale;
    provider_ = std::make_unique<StoredProjection>(
        kernels::BlockedMatrixF32::from_row_major(row_major.data(), dim_,
                                                  input_dim_),
        stream_base, scale);
    bias_.resize(dim_);
    for (auto& b : bias_) b = bias_rng.uniform(0.0F, kTwoPi);
  } else if (mode == ProjectionMode::kMaterialized) {
    provider_ = std::make_unique<StoredProjection>(dim_, input_dim_,
                                                   stream_base, scale);
    bias_.resize(dim_);
    for (std::size_t i = 0; i < dim_; ++i) bias_[i] = provider_->derived_bias(i);
  } else {
    provider_ = std::make_unique<DeterministicProjection>(dim_, input_dim_,
                                                          stream_base, scale);
  }
}

void RbfEncoder::project(std::span<const float> features, float* proj) const {
  assert(features.size() == input_dim_);
  const std::size_t chunk = provider_->preferred_chunk();
  for (std::size_t r0 = 0; r0 < dim_; r0 += chunk) {
    const std::size_t count = std::min(chunk, dim_ - r0);
    const float* blk = provider_->block(r0, count, scratch_rows_f32());
    kernels::active().gemv_f32(blk, count, input_dim_, features.data(),
                               proj + r0);
  }
}

void RbfEncoder::finish_bipolar(const float* proj, std::int8_t* out) const {
  const float amp = std::sqrt(2.0F / static_cast<float>(dim_));
  for (std::size_t i = 0; i < dim_; ++i) {
    const float h = form_ == RbfForm::kCosSin
                        ? std::cos(proj[i] + bias(i)) * std::sin(proj[i])
                        : amp * std::cos(proj[i] + bias(i));
    out[i] = h < 0.0F ? std::int8_t{-1} : std::int8_t{1};
  }
}

RealHV RbfEncoder::encode_real(std::span<const float> features) const {
  RealHV out(dim_);
  project(features, out.data());
  const float amp = std::sqrt(2.0F / static_cast<float>(dim_));
  for (std::size_t i = 0; i < dim_; ++i) {
    const float proj = out[i];
    out[i] = form_ == RbfForm::kCosSin
                 ? std::cos(proj + bias(i)) * std::sin(proj)
                 : amp * std::cos(proj + bias(i));
  }
  return out;
}

std::size_t RbfEncoder::projection_resident_bytes() const noexcept {
  return provider_->resident_bytes() + bias_.size() * sizeof(float);
}

void RbfEncoder::regenerate_dimensions(std::span<const std::uint32_t> dims) {
  provider_->regenerate(dims);
  if (!bias_.empty()) {
    for (const std::uint32_t d : dims) bias_[d] = provider_->derived_bias(d);
  }
}

void RbfEncoder::encode_dims(std::span<const float> features,
                             std::span<const std::uint32_t> dims,
                             std::span<std::int8_t> out) const {
  assert(features.size() == input_dim_ && out.size() >= dims.size());
  if (dims.empty()) return;
  std::vector<float>& blk = scratch_rows_f32();
  provider_->gather(dims, blk);
  std::vector<float>& proj = scratch_f32(dims.size());
  kernels::active().gemv_f32(blk.data(), dims.size(), input_dim_,
                             features.data(), proj.data());
  const float amp = std::sqrt(2.0F / static_cast<float>(dim_));
  for (std::size_t j = 0; j < dims.size(); ++j) {
    const float p = proj[j];
    const float h = form_ == RbfForm::kCosSin
                        ? std::cos(p + bias(dims[j])) * std::sin(p)
                        : amp * std::cos(p + bias(dims[j]));
    out[j] = h < 0.0F ? std::int8_t{-1} : std::int8_t{1};
  }
}

BipolarHV RbfEncoder::encode(std::span<const float> features) const {
  std::vector<float>& proj = scratch_f32(dim_);
  project(features, proj.data());
  BipolarHV out(dim_);
  finish_bipolar(proj.data(), out.data());
  return out;
}

std::vector<BipolarHV> RbfEncoder::encode_batch(
    std::span<const std::vector<float>> features,
    runtime::ThreadPool& pool) const {
  const BatchScope scope(features.size());
  std::vector<BipolarHV> out(features.size());
  const runtime::BatchExecutor exec(pool);
  exec.for_each_chunk(features.size(), [&](std::size_t begin, std::size_t end) {
    const std::size_t count = end - begin;
    // One matrix-matrix product per chunk: the projections of every sample
    // in the chunk land in one scratch block, then the nonlinearity + sign
    // runs over it. Scratch is per-thread, so repeated chunks reuse it.
    std::vector<float>& proj = scratch_f32(count * dim_);
    static thread_local std::vector<const float*> xs;
    static thread_local std::vector<float*> outs;
    xs.resize(count);
    outs.resize(count);
    for (std::size_t s = 0; s < count; ++s) {
      assert(features[begin + s].size() == input_dim_);
      xs[s] = features[begin + s].data();
    }
    // Row-chunked over the provider: resident projections run one full GEMM
    // (chunk == dim_), derived projections materialize a row block at a time
    // into per-thread scratch. Per-(sample, row) accumulation is identical
    // either way.
    const std::size_t chunk = provider_->preferred_chunk();
    for (std::size_t r0 = 0; r0 < dim_; r0 += chunk) {
      const std::size_t rc = std::min(chunk, dim_ - r0);
      const float* blk = provider_->block(r0, rc, scratch_rows_f32());
      for (std::size_t s = 0; s < count; ++s) {
        outs[s] = proj.data() + s * dim_ + r0;
      }
      kernels::active().gemm_f32(blk, rc, input_dim_, xs.data(), outs.data(),
                                 count);
    }
    for (std::size_t s = 0; s < count; ++s) {
      BipolarHV& hv = out[begin + s];
      hv.resize(dim_);
      finish_bipolar(proj.data() + s * dim_, hv.data());
    }
  });
  return out;
}

// ---------------------------------------------------------- SparseRbfEncoder

SparseRbfEncoder::SparseRbfEncoder(std::size_t input_dim, std::size_t dim,
                                   std::uint64_t seed, float sparsity,
                                   float length_scale, ProjectionMode mode)
    : input_dim_(input_dim), dim_(dim), mode_(mode) {
  if (input_dim == 0 || dim == 0) {
    throw std::invalid_argument("SparseRbfEncoder: dimensions must be positive");
  }
  if (sparsity < 0.0F || sparsity >= 1.0F) {
    throw std::invalid_argument("SparseRbfEncoder: sparsity must be in [0, 1)");
  }
  if (length_scale < 0.0F) {
    throw std::invalid_argument("SparseRbfEncoder: length_scale must be >= 0");
  }
  const auto raw =
      static_cast<std::size_t>(std::lround((1.0F - sparsity) * input_dim));
  window_ = std::clamp<std::size_t>(raw, 1, input_dim_);
  if (length_scale == 0.0F) {
    length_scale = 2.0F * std::sqrt(static_cast<float>(window_));
  }

  const float scale = 1.0F / length_scale;
  const std::uint64_t stream_base = derive_seed(seed, 3);
  if (mode == ProjectionMode::kStored) {
    Rng w_rng(derive_seed(seed, 0));
    Rng b_rng(derive_seed(seed, 1));
    Rng s_rng(derive_seed(seed, 2));
    std::vector<float> row_major(dim_ * window_);
    for (auto& w : row_major) w = w_rng.gaussian() * scale;
    provider_ = std::make_unique<StoredProjection>(
        kernels::BlockedMatrixF32::from_row_major(row_major.data(), dim_,
                                                  window_),
        stream_base, scale);
    bias_.resize(dim_);
    for (auto& b : bias_) b = b_rng.uniform(0.0F, kTwoPi);
    start_.resize(dim_);
    for (auto& s : start_) {
      s = static_cast<std::uint32_t>(s_rng.index(input_dim_));
    }
  } else if (mode == ProjectionMode::kMaterialized) {
    provider_ =
        std::make_unique<StoredProjection>(dim_, window_, stream_base, scale);
    bias_.resize(dim_);
    start_.resize(dim_);
    for (std::size_t i = 0; i < dim_; ++i) {
      bias_[i] = provider_->derived_bias(i);
      start_[i] = provider_->derived_start(i, input_dim_);
    }
  } else {
    provider_ = std::make_unique<DeterministicProjection>(dim_, window_,
                                                          stream_base, scale);
  }
}

void SparseRbfEncoder::project_doubled(const float* xx, float* proj) const {
  const std::size_t chunk = provider_->preferred_chunk();
  for (std::size_t r0 = 0; r0 < dim_; r0 += chunk) {
    const std::size_t count = std::min(chunk, dim_ - r0);
    const float* blk = provider_->block(r0, count, scratch_rows_f32());
    const std::uint32_t* starts = nullptr;
    if (!start_.empty()) {
      starts = start_.data() + r0;
    } else {
      std::vector<std::uint32_t>& sbuf = scratch_u32(count);
      for (std::size_t i = 0; i < count; ++i) {
        sbuf[i] = provider_->derived_start(r0 + i, input_dim_);
      }
      starts = sbuf.data();
    }
    kernels::active().sparse_gemv_f32(blk, starts, count, window_, xx,
                                      proj + r0);
  }
}

void SparseRbfEncoder::finish_bipolar(const float* proj,
                                      std::int8_t* out) const {
  for (std::size_t i = 0; i < dim_; ++i) {
    const float h = std::cos(proj[i] + bias(i)) * std::sin(proj[i]);
    out[i] = h < 0.0F ? std::int8_t{-1} : std::int8_t{1};
  }
}

std::size_t SparseRbfEncoder::projection_resident_bytes() const noexcept {
  return provider_->resident_bytes() + bias_.size() * sizeof(float) +
         start_.size() * sizeof(std::uint32_t);
}

void SparseRbfEncoder::regenerate_dimensions(
    std::span<const std::uint32_t> dims) {
  provider_->regenerate(dims);
  if (!bias_.empty()) {
    for (const std::uint32_t d : dims) {
      bias_[d] = provider_->derived_bias(d);
      start_[d] = provider_->derived_start(d, input_dim_);
    }
  }
}

void SparseRbfEncoder::encode_dims(std::span<const float> features,
                                   std::span<const std::uint32_t> dims,
                                   std::span<std::int8_t> out) const {
  assert(features.size() == input_dim_ && out.size() >= dims.size());
  if (dims.empty()) return;
  std::vector<float>& xx = scratch2_f32(2 * input_dim_);
  std::copy(features.begin(), features.end(), xx.begin());
  std::copy(features.begin(), features.end(),
            xx.begin() + static_cast<std::ptrdiff_t>(input_dim_));
  std::vector<float>& blk = scratch_rows_f32();
  provider_->gather(dims, blk);
  std::vector<std::uint32_t>& starts = scratch_u32(dims.size());
  for (std::size_t j = 0; j < dims.size(); ++j) starts[j] = start(dims[j]);
  std::vector<float>& proj = scratch_f32(dims.size());
  kernels::active().sparse_gemv_f32(blk.data(), starts.data(), dims.size(),
                                    window_, xx.data(), proj.data());
  for (std::size_t j = 0; j < dims.size(); ++j) {
    const float h = std::cos(proj[j] + bias(dims[j])) * std::sin(proj[j]);
    out[j] = h < 0.0F ? std::int8_t{-1} : std::int8_t{1};
  }
}

RealHV SparseRbfEncoder::encode_real(std::span<const float> features) const {
  assert(features.size() == input_dim_);
  std::vector<float>& xx = scratch2_f32(2 * input_dim_);
  std::copy(features.begin(), features.end(), xx.begin());
  std::copy(features.begin(), features.end(),
            xx.begin() + static_cast<std::ptrdiff_t>(input_dim_));
  RealHV out(dim_);
  project_doubled(xx.data(), out.data());
  for (std::size_t i = 0; i < dim_; ++i) {
    const float proj = out[i];
    out[i] = std::cos(proj + bias(i)) * std::sin(proj);
  }
  return out;
}

BipolarHV SparseRbfEncoder::encode(std::span<const float> features) const {
  assert(features.size() == input_dim_);
  std::vector<float>& xx = scratch2_f32(2 * input_dim_);
  std::copy(features.begin(), features.end(), xx.begin());
  std::copy(features.begin(), features.end(),
            xx.begin() + static_cast<std::ptrdiff_t>(input_dim_));
  std::vector<float>& proj = scratch_f32(dim_);
  project_doubled(xx.data(), proj.data());
  BipolarHV out(dim_);
  finish_bipolar(proj.data(), out.data());
  return out;
}

std::vector<BipolarHV> SparseRbfEncoder::encode_batch(
    std::span<const std::vector<float>> features,
    runtime::ThreadPool& pool) const {
  const BatchScope scope(features.size());
  std::vector<BipolarHV> out(features.size());
  const runtime::BatchExecutor exec(pool);
  exec.for_each_chunk(features.size(), [&](std::size_t begin, std::size_t end) {
    std::vector<float>& xx = scratch2_f32(2 * input_dim_);
    std::vector<float>& proj = scratch_f32(dim_);
    for (std::size_t i = begin; i < end; ++i) {
      const std::vector<float>& f = features[i];
      assert(f.size() == input_dim_);
      std::copy(f.begin(), f.end(), xx.begin());
      std::copy(f.begin(), f.end(),
                xx.begin() + static_cast<std::ptrdiff_t>(input_dim_));
      project_doubled(xx.data(), proj.data());
      BipolarHV& hv = out[i];
      hv.resize(dim_);
      finish_bipolar(proj.data(), hv.data());
    }
  });
  return out;
}

// --------------------------------------------------------- LinearLevelEncoder

LinearLevelEncoder::LinearLevelEncoder(std::size_t input_dim, std::size_t dim,
                                       std::uint64_t seed, std::size_t levels,
                                       float lo, float hi)
    : input_dim_(input_dim), dim_(dim), levels_(levels), lo_(lo), hi_(hi) {
  if (input_dim == 0 || dim == 0 || levels < 2) {
    throw std::invalid_argument(
        "LinearLevelEncoder: need positive dims and >= 2 levels");
  }
  if (!(lo < hi)) {
    throw std::invalid_argument("LinearLevelEncoder: require lo < hi");
  }
  Rng id_rng(derive_seed(seed, 0));
  ids_.resize(input_dim_ * dim_);
  for (auto& v : ids_) v = id_rng.sign();

  // Correlated level hypervectors: start from a random HV and flip a fixed
  // random subset of D/(levels-1) fresh positions per step, so hamming
  // distance grows linearly with level separation.
  levels_hv_.assign(levels_ * dim_, 0);
  Rng lvl_rng(derive_seed(seed, 1));
  std::vector<std::int8_t> current = lvl_rng.sign_vector(dim_);
  std::copy(current.begin(), current.end(), levels_hv_.begin());
  std::vector<std::size_t> order(dim_);
  for (std::size_t i = 0; i < dim_; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), lvl_rng.engine());
  const std::size_t flips_per_step = dim_ / (levels_ - 1);
  std::size_t cursor = 0;
  for (std::size_t l = 1; l < levels_; ++l) {
    for (std::size_t k = 0; k < flips_per_step && cursor < dim_; ++k, ++cursor) {
      current[order[cursor]] = static_cast<std::int8_t>(-current[order[cursor]]);
    }
    std::copy(current.begin(), current.end(), levels_hv_.begin() + l * dim_);
  }
}

BipolarHV LinearLevelEncoder::encode(std::span<const float> features) const {
  assert(features.size() == input_dim_);
  AccumHV acc(dim_, 0);
  const float range = hi_ - lo_;
  for (std::size_t f = 0; f < input_dim_; ++f) {
    const float clamped = std::clamp(features[f], lo_, hi_);
    const auto level = std::min<std::size_t>(
        static_cast<std::size_t>((clamped - lo_) / range * (levels_ - 1) + 0.5F),
        levels_ - 1);
    const std::int8_t* id = ids_.data() + f * dim_;
    const std::int8_t* lvl = levels_hv_.data() + level * dim_;
    for (std::size_t i = 0; i < dim_; ++i) acc[i] += id[i] * lvl[i];
  }
  return binarize(acc);
}

// ---------------------------------------------------------------- factories

std::unique_ptr<Encoder> make_encoder(EncoderKind kind, std::size_t input_dim,
                                      std::size_t dim, std::uint64_t seed,
                                      ProjectionMode mode) {
  switch (kind) {
    case EncoderKind::kRbfDense:
      return std::make_unique<RbfEncoder>(input_dim, dim, seed, 0.0F,
                                          RbfForm::kCosSin, mode);
    case EncoderKind::kRbfSparse:
      return std::make_unique<SparseRbfEncoder>(input_dim, dim, seed, 0.8F,
                                                0.0F, mode);
    case EncoderKind::kLinearLevel:
      return std::make_unique<LinearLevelEncoder>(input_dim, dim, seed);
  }
  throw std::invalid_argument("make_encoder: unknown encoder kind");
}

}  // namespace edgehd::hdc
