// Wire representation of hypervectors.
//
// Communication cost is a first-class quantity in EdgeHD: the evaluation's
// headline numbers are byte counts moved through the hierarchy. This module
// defines the canonical on-the-wire sizes and a packed binary codec so that
// the network simulator charges exactly what a real deployment would send.
//
//  * Bipolar hypervectors travel as 1 bit per dimension ("EdgeHD works with
//    binary query vectors", Section V-B).
//  * Integer accumulators (class / batch / residual hypervectors) travel as
//    fixed-width two's-complement words sized to their magnitude.
//  * Raw features travel as 32-bit floats (the centralized baseline's cost).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypervector.hpp"

namespace edgehd::hdc {

/// Bytes on the wire for a D-dimensional bipolar hypervector (1 bit/dim,
/// rounded up to whole bytes).
constexpr std::uint64_t wire_bytes_bipolar(std::size_t dim) noexcept {
  return (static_cast<std::uint64_t>(dim) + 7) / 8;
}

/// Bits needed to carry signed values with |v| <= max_magnitude.
std::uint32_t bits_for_magnitude(std::int64_t max_magnitude) noexcept;

/// Bytes on the wire for a D-dimensional integer accumulator whose entries
/// fit in `bits` bits each (bit-packed, rounded up to whole bytes).
constexpr std::uint64_t wire_bytes_accum(std::size_t dim,
                                         std::uint32_t bits) noexcept {
  return (static_cast<std::uint64_t>(dim) * bits + 7) / 8;
}

/// Bytes on the wire for the given accumulator, sized to its actual
/// magnitude.
std::uint64_t wire_bytes_accum(std::span<const std::int32_t> acc) noexcept;

/// Bytes on the wire for n raw float32 features.
constexpr std::uint64_t wire_bytes_features(std::size_t n) noexcept {
  return static_cast<std::uint64_t>(n) * 4;
}

/// Packs a bipolar hypervector to 1 bit per dimension (+1 -> 1, -1 -> 0).
std::vector<std::uint8_t> pack_bipolar(std::span<const std::int8_t> hv);

/// Inverse of pack_bipolar; `dim` is the original dimensionality.
BipolarHV unpack_bipolar(std::span<const std::uint8_t> bytes, std::size_t dim);

}  // namespace edgehd::hdc
