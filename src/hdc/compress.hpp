// Hypervector compression by position-keyed superposition
// (paper Section IV-C, Eq. 3–4).
//
// m hypervectors are folded into a single accumulator
//     H = P_1 * H_1 + P_2 * H_2 + ... + P_m * H_m
// where the position hypervectors P_i are random bipolar keys. Random keys
// are nearly orthogonal in high dimension, so unbinding with P_i recovers
// H_i plus cross-talk noise from the other m-1 terms; the noise grows with
// m, which is the compression-rate ↔ fidelity trade-off the paper sweeps
// (default m = 25).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypervector.hpp"

namespace edgehd::hdc {

/// Compresses batches of up to `capacity` bipolar hypervectors into one
/// integer hypervector, and recovers individual members.
class HvCompressor {
 public:
  /// @param dim      hypervector dimensionality D
  /// @param capacity maximum number m of hypervectors per compressed bundle
  /// @param seed     seed for the position hypervectors (sender and receiver
  ///                 construct identical compressors from the shared seed,
  ///                 so only the compressed accumulator crosses the network)
  HvCompressor(std::size_t dim, std::size_t capacity, std::uint64_t seed);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Position hypervector P_i.
  std::span<const std::int8_t> position(std::size_t i) const;

  /// Compresses hvs[0..k) (k <= capacity) into a single accumulator.
  AccumHV compress(std::span<const BipolarHV> hvs) const;

  /// Recovers the i-th member of a compressed accumulator:
  /// sign(H * P_i). Exact when only one member was compressed; otherwise the
  /// recovery carries cross-talk noise that shrinks as D/m grows.
  BipolarHV decompress(std::span<const std::int32_t> compressed,
                       std::size_t i) const;

  /// Expected per-component recovery error probability for a bundle of k
  /// members: P(|noise| > 1) where noise is the sum of k-1 fair ±1 terms,
  /// approximated by the Gaussian tail 1 - Phi(1/sqrt(k-1)). Used by tests
  /// and the compression ablation to sanity-check measured error rates.
  static double expected_bit_error(std::size_t k);

 private:
  std::size_t dim_;
  std::size_t capacity_;
  std::vector<std::int8_t> positions_;  // capacity x dim
};

}  // namespace edgehd::hdc
