#include "hypervector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace edgehd::hdc {

BipolarHV bind(std::span<const std::int8_t> a, std::span<const std::int8_t> b) {
  assert(a.size() == b.size());
  BipolarHV out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<std::int8_t>(a[i] * b[i]);
  }
  return out;
}

void bundle_into(AccumHV& acc, std::span<const std::int8_t> v) {
  assert(acc.size() == v.size());
  for (std::size_t i = 0; i < v.size(); ++i) acc[i] += v[i];
}

void unbundle_from(AccumHV& acc, std::span<const std::int8_t> v) {
  assert(acc.size() == v.size());
  for (std::size_t i = 0; i < v.size(); ++i) acc[i] -= v[i];
}

void accumulate(AccumHV& acc, std::span<const std::int32_t> other) {
  assert(acc.size() == other.size());
  for (std::size_t i = 0; i < other.size(); ++i) acc[i] += other[i];
}

void deaccumulate(AccumHV& acc, std::span<const std::int32_t> other) {
  assert(acc.size() == other.size());
  for (std::size_t i = 0; i < other.size(); ++i) acc[i] -= other[i];
}

BipolarHV permute(std::span<const std::int8_t> v, std::size_t shift) {
  const std::size_t n = v.size();
  BipolarHV out(n);
  if (n == 0) return out;
  shift %= n;
  // A cyclic rotation is two straight block copies: v[0 .. n-shift) lands at
  // out[shift ..) and the wrapped tail v[n-shift ..) lands at out[0 ..).
  std::copy(v.begin(), v.end() - static_cast<std::ptrdiff_t>(shift),
            out.begin() + static_cast<std::ptrdiff_t>(shift));
  std::copy(v.end() - static_cast<std::ptrdiff_t>(shift), v.end(),
            out.begin());
  return out;
}

BipolarHV binarize(std::span<const float> v) {
  BipolarHV out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = v[i] < 0.0F ? std::int8_t{-1} : std::int8_t{1};
  }
  return out;
}

BipolarHV binarize(std::span<const std::int32_t> v) {
  BipolarHV out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = v[i] < 0 ? std::int8_t{-1} : std::int8_t{1};
  }
  return out;
}

std::int64_t dot(std::span<const std::int8_t> a, std::span<const std::int8_t> b) {
  assert(a.size() == b.size());
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<std::int64_t>(a[i]) * b[i];
  }
  return sum;
}

float dot(std::span<const std::int8_t> a, std::span<const float> b) {
  assert(a.size() == b.size());
  // Bipolar components only flip signs, so the product reduces to
  // conditional negation — the same trick the FPGA negation block uses.
  float sum = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] > 0 ? b[i] : -b[i];
  }
  return sum;
}

double dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

double norm(std::span<const float> v) {
  double sum = 0.0;
  for (float x : v) sum += static_cast<double>(x) * x;
  return std::sqrt(sum);
}

double norm(std::span<const std::int32_t> v) {
  double sum = 0.0;
  for (std::int32_t x : v) sum += static_cast<double>(x) * x;
  return std::sqrt(sum);
}

double cosine(std::span<const float> a, std::span<const float> b) {
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

double cosine(std::span<const std::int8_t> a, std::span<const std::int32_t> b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  const double nb = norm(b);
  if (nb == 0.0) return 0.0;
  const double na = std::sqrt(static_cast<double>(a.size()));
  return sum / (na * nb);
}

double hamming(std::span<const std::int8_t> a, std::span<const std::int8_t> b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++mismatches;
  }
  return static_cast<double>(mismatches) / static_cast<double>(a.size());
}

RealHV normalized(std::span<const std::int32_t> acc) {
  RealHV out(acc.size(), 0.0F);
  const double n = norm(acc);
  if (n == 0.0) return out;
  const float inv = static_cast<float>(1.0 / n);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out[i] = static_cast<float>(acc[i]) * inv;
  }
  return out;
}

}  // namespace edgehd::hdc
