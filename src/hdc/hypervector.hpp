// Hypervector types and the algebra that operates on them.
//
// EdgeHD stores hypervectors at rest in bipolar form (components in {-1,+1},
// one int8 each) and accumulates bundles of them in 32-bit integer
// accumulators. Similarity search uses pre-normalized float copies of the
// accumulators, matching the paper's FPGA optimization of folding the class
// norm into the model once per training step (Section V-B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace edgehd::hdc {

/// A bipolar hypervector: every component is -1 or +1.
using BipolarHV = std::vector<std::int8_t>;

/// An integer accumulator hypervector, the result of bundling (element-wise
/// adding) bipolar hypervectors. Values are bounded by the bundle count.
using AccumHV = std::vector<std::int32_t>;

/// A real-valued hypervector (pre-binarization encodings, normalized models).
using RealHV = std::vector<float>;

/// Element-wise product (the HDC "binding" operation) of two bipolar
/// hypervectors of equal dimensionality. Binding is its own inverse:
/// bind(bind(a, b), b) == a.
BipolarHV bind(std::span<const std::int8_t> a, std::span<const std::int8_t> b);

/// Adds `v` element-wise into the accumulator `acc` (the "bundling"
/// operation). `acc` and `v` must have equal dimensionality.
void bundle_into(AccumHV& acc, std::span<const std::int8_t> v);

/// Subtracts `v` element-wise from `acc`; used by retraining and by
/// residual-hypervector model updates.
void unbundle_from(AccumHV& acc, std::span<const std::int8_t> v);

/// Adds integer accumulators element-wise: acc += other.
void accumulate(AccumHV& acc, std::span<const std::int32_t> other);

/// Subtracts integer accumulators element-wise: acc -= other.
void deaccumulate(AccumHV& acc, std::span<const std::int32_t> other);

/// Cyclic rotation by `shift` positions (the HDC "permutation" operation),
/// used to encode sequence/order information.
BipolarHV permute(std::span<const std::int8_t> v, std::size_t shift);

/// Binarizes a real hypervector with the sign function; ties (exact zeros)
/// map to +1 so the result is strictly bipolar.
BipolarHV binarize(std::span<const float> v);

/// Binarizes an integer accumulator with the sign function; zeros map to +1.
BipolarHV binarize(std::span<const std::int32_t> v);

/// Dot product of two bipolar hypervectors. For bipolar vectors this equals
/// D - 2 * hamming_distance.
std::int64_t dot(std::span<const std::int8_t> a, std::span<const std::int8_t> b);

/// Dot product of a bipolar query against a real (normalized model) vector.
float dot(std::span<const std::int8_t> a, std::span<const float> b);

/// Dot product of two real hypervectors.
double dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm of a real hypervector.
double norm(std::span<const float> v);

/// Euclidean norm of an integer accumulator.
double norm(std::span<const std::int32_t> v);

/// Cosine similarity between two real hypervectors. Returns 0 when either
/// vector is all-zero.
double cosine(std::span<const float> a, std::span<const float> b);

/// Cosine similarity between a bipolar query and an integer class
/// accumulator. Returns 0 when the accumulator is all-zero.
double cosine(std::span<const std::int8_t> a, std::span<const std::int32_t> b);

/// Normalized Hamming distance in [0, 1] between two bipolar hypervectors.
double hamming(std::span<const std::int8_t> a, std::span<const std::int8_t> b);

/// Returns `acc / ||acc||` as a float vector; an all-zero accumulator maps
/// to an all-zero float vector.
RealHV normalized(std::span<const std::int32_t> acc);

}  // namespace edgehd::hdc
