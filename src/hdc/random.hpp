// Seeded randomness utilities shared by every stochastic component of EdgeHD.
//
// All random state in the library is derived from explicit 64-bit seeds so
// that every experiment, test and example is reproducible bit-for-bit. Seed
// *derivation* (splitting one seed into many independent streams) uses
// SplitMix64, the standard generator-initialization mixer; the streams
// themselves are std::mt19937_64.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace edgehd::hdc {

/// SplitMix64 step: maps a seed to a well-mixed 64-bit value and advances it.
/// Used to derive independent sub-seeds from a single user-provided seed.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives the `index`-th independent sub-seed from a master seed.
/// Distinct (seed, index) pairs yield statistically independent streams.
constexpr std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) noexcept {
  std::uint64_t s = seed ^ (0xd1b54a32d192ed03ULL * (index + 1));
  return splitmix64(s);
}

/// Convenience RNG wrapper: a mt19937_64 seeded through SplitMix64 so that
/// small integer seeds still produce well-dispersed initial states.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(mix(seed)) {}

  std::mt19937_64& engine() noexcept { return engine_; }

  /// Standard normal draw.
  float gaussian() { return normal_(engine_); }

  /// Uniform draw in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + (hi - lo) * unit_(engine_);
  }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Fair ±1 draw.
  std::int8_t sign() {
    return (engine_() & 1u) != 0 ? std::int8_t{1} : std::int8_t{-1};
  }

  /// Bernoulli draw with probability p of `true`.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Vector of `n` standard normal draws.
  std::vector<float> gaussian_vector(std::size_t n) {
    std::vector<float> v(n);
    for (auto& x : v) x = gaussian();
    return v;
  }

  /// Vector of `n` fair ±1 draws.
  std::vector<std::int8_t> sign_vector(std::size_t n) {
    std::vector<std::int8_t> v(n);
    for (auto& x : v) x = sign();
    return v;
  }

 private:
  static std::uint64_t mix(std::uint64_t seed) noexcept {
    return splitmix64(seed);
  }

  std::mt19937_64 engine_;
  std::normal_distribution<float> normal_{0.0F, 1.0F};
  std::uniform_real_distribution<float> unit_{0.0F, 1.0F};
};

}  // namespace edgehd::hdc
