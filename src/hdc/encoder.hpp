// Feature-space → hyperspace encoders (paper Section III-A and V-A).
//
// The paper's contribution on the encoding side is a *non-linear* universal
// encoder built from random Fourier features: each output dimension is
//
//     h_i = cos(B_i · F + b_i) * sin(B_i · F)
//
// with B_i ~ N(0,1)^n and b_i ~ U(0, 2pi), binarized with sign() for
// computation efficiency. Inner products of the (real, cos-form) encodings
// approximate the Gaussian RBF kernel (Eq. 1–2), which is what lets a linear
// class-hypervector model separate non-linearly separable data.
//
// Three encoder families live here:
//  * RbfEncoder        — dense projection matrix, the reference encoder.
//  * SparseRbfEncoder  — each projection row keeps only a contiguous window
//                        of (1-s)*n non-zeros plus its start index, exactly
//                        the storage layout of the FPGA design (Section V-A).
//  * LinearLevelEncoder— the ID–level encoding of prior HD work [36]; kept as
//                        the "baseline HD" comparator of Figure 7.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hypervector.hpp"
#include "kernels/kernels.hpp"
#include "projection.hpp"
#include "runtime/thread_pool.hpp"

namespace edgehd::hdc {

/// Abstract feature-vector → hypervector encoder.
///
/// Implementations are immutable after construction: the random projection
/// state is generated once from the seed and then shared by training and
/// inference (the paper generates {B_1..B_D} "once offline").
class Encoder {
 public:
  virtual ~Encoder() = default;

  /// Dimensionality D of produced hypervectors.
  virtual std::size_t dim() const noexcept = 0;

  /// Expected input feature count n.
  virtual std::size_t input_dim() const noexcept = 0;

  /// Encodes a feature vector into a bipolar hypervector.
  /// Precondition: features.size() == input_dim().
  virtual BipolarHV encode(std::span<const float> features) const = 0;

  /// Encodes into the pre-binarization real hypervector. The default forwards
  /// to encode(); kernel-approximating encoders override it.
  virtual RealHV encode_real(std::span<const float> features) const;

  /// Encodes a batch of feature vectors, fanning samples over `pool`.
  /// The default fans the identical per-sample encode(); the RFF encoders
  /// override it with a chunked matrix–matrix product. Either way the
  /// result is bit-identical to the serial per-sample loop for any worker
  /// count. Results are in input order.
  virtual std::vector<BipolarHV> encode_batch(
      std::span<const std::vector<float>> features,
      runtime::ThreadPool& pool) const;

  /// Serial fallback on the process-global pool.
  std::vector<BipolarHV> encode_batch(
      std::span<const std::vector<float>> features) const;

  /// Resident bytes of random projection state (rows + biases + window
  /// starts + generation counters); 0 when the encoder has none.
  virtual std::size_t projection_resident_bytes() const noexcept { return 0; }

  /// True when per-dimension regeneration is supported (the RFF encoders).
  virtual bool supports_regeneration() const noexcept { return false; }

  /// Generation counter of output dimension `d`; 0 = original derivation.
  virtual std::uint16_t dimension_generation(
      std::size_t /*d*/) const noexcept {
    return 0;
  }

  /// Re-derives the projection rows of `dims` (ascending, in range) from
  /// bumped per-dimension generation counters. Throws std::logic_error when
  /// the encoder does not support regeneration.
  virtual void regenerate_dimensions(std::span<const std::uint32_t> dims);

  /// Partial encode: out[j] = encode(features)[dims[j]] for ascending `dims`.
  /// The default encodes fully and gathers; the RFF encoders override it
  /// with a gathered-row projection that costs O(k·n) per sample.
  virtual void encode_dims(std::span<const float> features,
                           std::span<const std::uint32_t> dims,
                           std::span<std::int8_t> out) const;
};

/// Kernel form used by RbfEncoder.
enum class RbfForm : std::uint8_t {
  /// h_i = cos(B_i·F + b_i) * sin(B_i·F) — the paper's production formula.
  kCosSin,
  /// h_i = sqrt(2/D) * cos(B_i·F + b_i) — the textbook RFF map of Eq. 2,
  /// whose inner products converge to the RBF kernel; used by the kernel
  /// approximation property tests and the encoding ablation.
  kCos,
};

/// Dense random-Fourier-feature encoder approximating the RBF kernel.
class RbfEncoder final : public Encoder {
 public:
  /// @param input_dim   feature count n
  /// @param dim         hypervector dimensionality D
  /// @param seed        master seed for B and b
  /// @param length_scale  RBF length scale; projections are scaled by
  ///                      1/length_scale, so larger values give smoother
  ///                      (wider) kernels. Pass 0 (the default) to use
  ///                      sqrt(n), which keeps the projected variance of
  ///                      z-scored features at ~1 for any feature count.
  /// @param form        kernel form (see RbfForm)
  /// @param mode        projection storage (see ProjectionMode). kStored
  ///                    reproduces the historical draws bit-for-bit;
  ///                    kDeterministic/kMaterialized share a counter-based
  ///                    derivation and are bit-identical to each other.
  RbfEncoder(std::size_t input_dim, std::size_t dim, std::uint64_t seed,
             float length_scale = 0.0F, RbfForm form = RbfForm::kCosSin,
             ProjectionMode mode = ProjectionMode::kStored);

  std::size_t dim() const noexcept override { return dim_; }
  std::size_t input_dim() const noexcept override { return input_dim_; }
  BipolarHV encode(std::span<const float> features) const override;
  RealHV encode_real(std::span<const float> features) const override;

  /// Chunked GEMM over the batch: every chunk of samples runs one blocked
  /// matrix–matrix product against the projection (kernels::gemm_f32)
  /// instead of per-sample GEMVs, with per-thread scratch reuse.
  std::vector<BipolarHV> encode_batch(
      std::span<const std::vector<float>> features,
      runtime::ThreadPool& pool) const override;

  std::size_t projection_resident_bytes() const noexcept override;
  bool supports_regeneration() const noexcept override { return true; }
  std::uint16_t dimension_generation(std::size_t d) const noexcept override {
    return provider_->generation(d);
  }
  void regenerate_dimensions(std::span<const std::uint32_t> dims) override;
  void encode_dims(std::span<const float> features,
                   std::span<const std::uint32_t> dims,
                   std::span<std::int8_t> out) const override;

  ProjectionMode projection_mode() const noexcept { return mode_; }

 private:
  /// GEMV of the projection against `features` into `proj` (size dim_),
  /// chunked over provider row blocks through the dispatched kernel table.
  void project(std::span<const float> features, float* proj) const;
  /// Applies the kernel form + sign to a projection row, writing bipolar
  /// components (the fused tail of encode()).
  void finish_bipolar(const float* proj, std::int8_t* out) const;
  /// Bias of dimension `i`: resident for stored/materialized projections,
  /// derived from the row's counter stream otherwise.
  float bias(std::size_t i) const noexcept {
    return bias_.empty() ? provider_->derived_bias(i) : bias_[i];
  }

  std::size_t input_dim_;
  std::size_t dim_;
  RbfForm form_;
  ProjectionMode mode_;
  std::unique_ptr<ProjectionProvider> provider_;  // D x n, pre-scaled by 1/w
  std::vector<float> bias_;  // D values in [0, 2pi); empty = derived per use
};

/// Sparse RFF encoder mirroring the FPGA weight-vector storage: row i of the
/// projection holds `nonzeros` consecutive Gaussian values starting at a
/// random feature index (wrapping around), everything else is zero. With
/// sparsity s, nonzeros = max(1, round((1-s) * n)).
class SparseRbfEncoder final : public Encoder {
 public:
  /// `length_scale` 0 (default) auto-selects sqrt(window), the scale that
  /// keeps projected variance ~1 for z-scored features.
  SparseRbfEncoder(std::size_t input_dim, std::size_t dim, std::uint64_t seed,
                   float sparsity = 0.8F, float length_scale = 0.0F,
                   ProjectionMode mode = ProjectionMode::kStored);

  std::size_t dim() const noexcept override { return dim_; }
  std::size_t input_dim() const noexcept override { return input_dim_; }
  BipolarHV encode(std::span<const float> features) const override;
  RealHV encode_real(std::span<const float> features) const override;

  /// Chunked batch encode through the sparse-window GEMV kernel with
  /// per-thread scratch reuse.
  std::vector<BipolarHV> encode_batch(
      std::span<const std::vector<float>> features,
      runtime::ThreadPool& pool) const override;

  /// Non-zero window length per projection row.
  std::size_t nonzeros_per_row() const noexcept { return window_; }

  /// Multiplications needed per encoded dimension (== nonzeros_per_row());
  /// the FPGA model uses this for DSP occupancy.
  std::size_t macs_per_dim() const noexcept { return window_; }

  std::size_t projection_resident_bytes() const noexcept override;
  bool supports_regeneration() const noexcept override { return true; }
  std::uint16_t dimension_generation(std::size_t d) const noexcept override {
    return provider_->generation(d);
  }
  void regenerate_dimensions(std::span<const std::uint32_t> dims) override;
  void encode_dims(std::span<const float> features,
                   std::span<const std::uint32_t> dims,
                   std::span<std::int8_t> out) const override;

  ProjectionMode projection_mode() const noexcept { return mode_; }

 private:
  /// Sparse GEMV into `proj` using `xx`, the features doubled ([x, x]) so
  /// wrapped windows read contiguously; chunked over provider row blocks.
  void project_doubled(const float* xx, float* proj) const;
  void finish_bipolar(const float* proj, std::int8_t* out) const;
  float bias(std::size_t i) const noexcept {
    return bias_.empty() ? provider_->derived_bias(i) : bias_[i];
  }
  std::uint32_t start(std::size_t i) const noexcept {
    return start_.empty() ? provider_->derived_start(i, input_dim_)
                          : start_[i];
  }

  std::size_t input_dim_;
  std::size_t dim_;
  std::size_t window_;
  ProjectionMode mode_;
  std::unique_ptr<ProjectionProvider> provider_;  // D x window, pre-scaled
  std::vector<std::uint32_t> start_;  // start index per row; empty = derived
  std::vector<float> bias_;           // empty = derived per use
};

/// ID–level encoding of prior HD classifiers [36] (the Figure 7 "baseline
/// HD"): feature values are quantized into `levels` correlated level
/// hypervectors, bound with a random per-feature ID hypervector, and bundled.
/// The map is linear in the level representation, which is exactly the
/// weakness the paper's non-linear encoder addresses.
class LinearLevelEncoder final : public Encoder {
 public:
  /// @param lo,hi  expected feature range for quantization; values outside
  ///               are clamped.
  LinearLevelEncoder(std::size_t input_dim, std::size_t dim, std::uint64_t seed,
                     std::size_t levels = 32, float lo = -3.0F, float hi = 3.0F);

  std::size_t dim() const noexcept override { return dim_; }
  std::size_t input_dim() const noexcept override { return input_dim_; }
  BipolarHV encode(std::span<const float> features) const override;

  std::size_t levels() const noexcept { return levels_; }

 private:
  std::size_t input_dim_;
  std::size_t dim_;
  std::size_t levels_;
  float lo_;
  float hi_;
  std::vector<std::int8_t> ids_;     // input_dim x dim bipolar ID hypervectors
  std::vector<std::int8_t> levels_hv_;  // levels x dim correlated level HVs
};

/// Factory helpers so callers can pick encoders by name (used by benches).
enum class EncoderKind : std::uint8_t { kRbfDense, kRbfSparse, kLinearLevel };

/// `mode` selects the projection storage for the RFF encoders; the linear
/// level encoder has no projection matrix and ignores it.
std::unique_ptr<Encoder> make_encoder(EncoderKind kind, std::size_t input_dim,
                                      std::size_t dim, std::uint64_t seed,
                                      ProjectionMode mode = ProjectionMode::kStored);

}  // namespace edgehd::hdc
