#include "projection.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace edgehd::hdc {

namespace {

constexpr std::size_t kLane = kernels::BlockedMatrixF32::kLane;

/// u64 -> double in [0, 1) with 53 significant bits.
constexpr double unit_double(std::uint64_t u) noexcept {
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(ProjectionMode mode) noexcept {
  switch (mode) {
    case ProjectionMode::kStored:
      return "stored";
    case ProjectionMode::kDeterministic:
      return "deterministic";
    case ProjectionMode::kMaterialized:
      return "materialized";
  }
  return "unknown";
}

float stream_gaussian(std::uint64_t stream_seed, std::uint64_t index) noexcept {
  // Box–Muller in double, rounded to float once; u1 shifted into (0, 1] so
  // the log is always finite.
  const double u1 = unit_double(stream_u64(stream_seed, 2 * index)) +
                    0x1.0p-53;
  const double u2 = unit_double(stream_u64(stream_seed, 2 * index + 1));
  const double r = std::sqrt(-2.0 * std::log(u1));
  return static_cast<float>(r * std::cos(2.0 * std::numbers::pi * u2));
}

float stream_uniform_two_pi(std::uint64_t stream_seed,
                            std::uint64_t pos) noexcept {
  return static_cast<float>(2.0 * std::numbers::pi *
                            unit_double(stream_u64(stream_seed, pos)));
}

// ------------------------------------------------------- ProjectionProvider

ProjectionProvider::ProjectionProvider(std::size_t rows, std::size_t cols,
                                       std::uint64_t stream_base, float scale)
    : rows_(rows), cols_(cols), stream_base_(stream_base), scale_(scale) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument(
        "ProjectionProvider: dimensions must be positive");
  }
}

void ProjectionProvider::derive_row(std::size_t row, float* dst) const noexcept {
  const std::uint64_t s = row_stream(row);
  for (std::size_t j = 0; j < cols_; ++j) {
    dst[j] = stream_gaussian(s, j) * scale_;
  }
}

void ProjectionProvider::bump_generations(std::span<const std::uint32_t> rows) {
  for (const std::uint32_t r : rows) {
    if (r >= rows_) {
      throw std::invalid_argument(
          "ProjectionProvider: regenerate row out of range: " +
          std::to_string(r));
    }
  }
  if (gens_.empty()) gens_.assign(rows_, 0);
  for (const std::uint32_t r : rows) ++gens_[r];
}

void ProjectionProvider::regenerate(std::span<const std::uint32_t> rows) {
  bump_generations(rows);
}

void ProjectionProvider::gather(std::span<const std::uint32_t> rows,
                                std::vector<float>& out) const {
  const std::size_t k = rows.size();
  const std::size_t blocks = (k + kLane - 1) / kLane;
  out.assign(blocks * cols_ * kLane, 0.0F);
  std::vector<float> tmp(cols_);
  for (std::size_t i = 0; i < k; ++i) {
    copy_row(rows[i], tmp.data());
    float* base = out.data() + (i / kLane) * cols_ * kLane + (i % kLane);
    for (std::size_t c = 0; c < cols_; ++c) base[c * kLane] = tmp[c];
  }
}

// --------------------------------------------------------- StoredProjection

StoredProjection::StoredProjection(kernels::BlockedMatrixF32 matrix,
                                   std::uint64_t stream_base, float scale)
    : ProjectionProvider(matrix.rows(), matrix.cols(), stream_base, scale),
      matrix_(std::move(matrix)) {}

StoredProjection::StoredProjection(std::size_t rows, std::size_t cols,
                                   std::uint64_t stream_base, float scale)
    : ProjectionProvider(rows, cols, stream_base, scale),
      matrix_(rows, cols) {
  std::vector<float> tmp(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    derive_row(r, tmp.data());
    for (std::size_t c = 0; c < cols; ++c) matrix_.at(r, c) = tmp[c];
  }
}

std::size_t StoredProjection::resident_bytes() const noexcept {
  const std::size_t padded = (rows() + kLane - 1) / kLane * kLane;
  return padded * cols() * sizeof(float) + generation_bytes();
}

void StoredProjection::regenerate(std::span<const std::uint32_t> rows) {
  bump_generations(rows);
  std::vector<float> tmp(cols());
  for (const std::uint32_t r : rows) {
    derive_row(r, tmp.data());
    for (std::size_t c = 0; c < cols(); ++c) matrix_.at(r, c) = tmp[c];
  }
}

void StoredProjection::copy_row(std::size_t row, float* dst) const {
  for (std::size_t c = 0; c < cols(); ++c) dst[c] = matrix_.at(row, c);
}

// -------------------------------------------------- DeterministicProjection

DeterministicProjection::DeterministicProjection(std::size_t rows,
                                                 std::size_t cols,
                                                 std::uint64_t stream_base,
                                                 float scale)
    : ProjectionProvider(rows, cols, stream_base, scale) {}

const float* DeterministicProjection::block(std::size_t first,
                                            std::size_t count,
                                            std::vector<float>& scratch) const {
  const std::size_t blocks = (count + kLane - 1) / kLane;
  scratch.assign(blocks * cols() * kLane, 0.0F);
  std::vector<float> tmp(cols());
  for (std::size_t i = 0; i < count; ++i) {
    derive_row(first + i, tmp.data());
    float* base = scratch.data() + (i / kLane) * cols() * kLane + (i % kLane);
    for (std::size_t c = 0; c < cols(); ++c) base[c * kLane] = tmp[c];
  }
  return scratch.data();
}

std::size_t DeterministicProjection::preferred_chunk() const noexcept {
  // 256 rows x cols floats of scratch per chunk: small enough to stay in L2
  // for any realistic feature count, large enough to amortize the GEMV call.
  constexpr std::size_t kChunk = 256;
  return rows() < kChunk ? ((rows() + kLane - 1) / kLane) * kLane : kChunk;
}

std::size_t DeterministicProjection::resident_bytes() const noexcept {
  return generation_bytes();
}

}  // namespace edgehd::hdc
