#include "spatial_encoder.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "random.hpp"
#include "runtime/batch_executor.hpp"

namespace edgehd::hdc {

SpatialEncoder::SpatialEncoder(std::size_t width, std::size_t height,
                               std::size_t dim, std::uint64_t seed,
                               float length_scale)
    : width_(width), height_(height), dim_(dim) {
  if (width == 0 || height == 0 || dim == 0) {
    throw std::invalid_argument("SpatialEncoder: dimensions must be positive");
  }
  if (length_scale <= 0.0F) {
    throw std::invalid_argument("SpatialEncoder: length_scale must be positive");
  }
  inv_scale_ = 1.0F / length_scale;
  Rng x_rng(derive_seed(seed, 0));
  Rng y_rng(derive_seed(seed, 1));
  theta_x_ = x_rng.gaussian_vector(dim_);
  theta_y_ = y_rng.gaussian_vector(dim_);
}

PhasorHV SpatialEncoder::position(float x, float y) const {
  PhasorHV out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    // B_x^x * B_y^y = e^{i (x*theta_x + y*theta_y) / w}
    const float phase = (x * theta_x_[i] + y * theta_y_[i]) * inv_scale_;
    out[i] = std::polar(1.0F, phase);
  }
  return out;
}

PhasorHV SpatialEncoder::encode(std::span<const float> pixels) const {
  assert(pixels.size() == width_ * height_);
  PhasorHV acc(dim_, {0.0F, 0.0F});
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_; ++x) {
      const float value = pixels[y * width_ + x];
      if (value == 0.0F) continue;  // sparse images (e.g. digits) skip fast
      for (std::size_t i = 0; i < dim_; ++i) {
        const float phase =
            (static_cast<float>(x) * theta_x_[i] + static_cast<float>(y) * theta_y_[i]) *
            inv_scale_;
        acc[i] += value * std::polar(1.0F, phase);
      }
    }
  }
  return acc;
}

std::vector<PhasorHV> SpatialEncoder::encode_batch(
    std::span<const std::vector<float>> images,
    runtime::ThreadPool& pool) const {
  const runtime::BatchExecutor exec(pool);
  return exec.map(images.size(),
                  [&](std::size_t i) { return encode(images[i]); });
}

BipolarHV SpatialEncoder::binarize_real(const PhasorHV& hv) {
  BipolarHV out(hv.size());
  for (std::size_t i = 0; i < hv.size(); ++i) {
    out[i] = hv[i].real() < 0.0F ? std::int8_t{-1} : std::int8_t{1};
  }
  return out;
}

double SpatialEncoder::similarity(const PhasorHV& a, const PhasorHV& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>((a[i] * std::conj(b[i])).real());
  }
  return sum / static_cast<double>(a.size());
}

}  // namespace edgehd::hdc
