// Projection providers: where the RFF encoders' random rows live.
//
// The paper's encoders draw a D x n Gaussian projection matrix B once and
// keep it resident — O(n·D) floats per leaf, the single largest per-node
// memory cost in the system. XL-HD-style deterministic projections remove
// that cost: every row is a pure function of (seed, row, generation), so it
// can be re-derived on demand instead of stored. DistHD-style dimension
// regeneration then becomes a counter bump: re-deriving row i at generation
// g+1 replaces an undiscriminating dimension with a fresh one, reproducibly
// on every node that knows (seed, i, g+1).
//
// Three providers cover the trade-off space:
//   * StoredProjection       — resident blocked matrix. Wraps the legacy
//                              sequential mt19937 draws (bit-compat with
//                              every golden pin) or a fully counter-derived
//                              matrix (the "materialized twin" used to audit
//                              the deterministic path).
//   * DeterministicProjection— ~zero resident bytes; rows are materialized
//                              per chunk into caller-provided scratch, in the
//                              same 8-row-interleaved blocked layout the
//                              GEMV/GEMM kernels consume. A blocked sub-range
//                              starting at an 8-aligned row is layout- and
//                              accumulation-order-identical to the same rows
//                              of a resident matrix, so chunked encoding is
//                              bit-identical to the materialized twin.
//
// Row values come from a counter-based SplitMix64 stream (random access, no
// sequential state): position p of row r at generation g is
// splitmix64(derive_seed(derive_seed(base, r), g) + (p+1)·golden). Gaussians
// use two u64 positions via Box–Muller, the bias draw sits at position
// 2·cols, and the sparse window start at 2·cols + 1, so regenerating a row
// refreshes its weights, bias and window together.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kernels/kernels.hpp"
#include "random.hpp"

namespace edgehd::hdc {

/// How an RFF encoder holds its projection rows.
enum class ProjectionMode : std::uint8_t {
  /// Legacy sequential draws, resident matrix (the golden-pinned default).
  kStored,
  /// Counter-derived rows materialized per chunk; ~zero resident bytes.
  kDeterministic,
  /// Counter-derived rows kept resident — the bit-compat twin of
  /// kDeterministic, used by the determinism audits.
  kMaterialized,
};

const char* to_string(ProjectionMode mode) noexcept;

/// Value at position `pos` of the counter stream keyed by `stream_seed`.
constexpr std::uint64_t stream_u64(std::uint64_t stream_seed,
                                   std::uint64_t pos) noexcept {
  std::uint64_t s = stream_seed + pos * 0x9e3779b97f4a7c15ULL;
  return splitmix64(s);
}

/// Standard normal value at gaussian index `index` (consumes u64 positions
/// 2·index and 2·index + 1) via Box–Muller.
float stream_gaussian(std::uint64_t stream_seed, std::uint64_t index) noexcept;

/// Uniform [0, 2pi) value at u64 position `pos`.
float stream_uniform_two_pi(std::uint64_t stream_seed,
                            std::uint64_t pos) noexcept;

/// Source of projection rows for the RFF encoders. Owns the per-row
/// generation counters; derivation parameters (stream base seed, 1/length
/// scale) live here so stored and derived providers regenerate identically.
class ProjectionProvider {
 public:
  ProjectionProvider(std::size_t rows, std::size_t cols,
                     std::uint64_t stream_base, float scale);
  virtual ~ProjectionProvider() = default;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  /// Generation counter of `row`; 0 until the row is first regenerated.
  std::uint16_t generation(std::size_t row) const noexcept {
    return gens_.empty() ? std::uint16_t{0} : gens_[row];
  }

  /// Bias draw of `row` at its current generation, in [0, 2pi).
  float derived_bias(std::size_t row) const noexcept {
    return stream_uniform_two_pi(row_stream(row), 2 * cols_);
  }

  /// Sparse window start of `row` at its current generation, in
  /// [0, input_dim).
  std::uint32_t derived_start(std::size_t row,
                              std::size_t input_dim) const noexcept {
    return static_cast<std::uint32_t>(
        stream_u64(row_stream(row), 2 * cols_ + 1) % input_dim);
  }

  /// Pointer to blocked data for rows [first, first + count); `first` must be
  /// a multiple of 8. Resident providers return an interior pointer and leave
  /// `scratch` alone; derived providers materialize into `scratch` (resized
  /// on demand) and return scratch.data().
  virtual const float* block(std::size_t first, std::size_t count,
                             std::vector<float>& scratch) const = 0;

  /// Row-chunk size encoders should drive GEMV/GEMM with (rows() when the
  /// matrix is resident; a cache-friendly multiple of 8 otherwise).
  virtual std::size_t preferred_chunk() const noexcept = 0;

  /// Bytes held resident by this provider (matrix + generation counters).
  virtual std::size_t resident_bytes() const noexcept = 0;

  /// Bumps the generation counter of each listed row (ascending, in range)
  /// and — for resident providers — overwrites the row with its re-derived
  /// replacement.
  virtual void regenerate(std::span<const std::uint32_t> rows);

  /// Gathered blocked matrix of arbitrary `rows` into `out` (rows.size()
  /// rows padded to a multiple of 8, zero-filled padding), for partial
  /// encodes over a dimension subset.
  void gather(std::span<const std::uint32_t> rows,
              std::vector<float>& out) const;

 protected:
  /// Row-major values of `row` (cols floats) into dst.
  virtual void copy_row(std::size_t row, float* dst) const = 0;

  /// Counter-derivation of `row` at its current generation into dst.
  void derive_row(std::size_t row, float* dst) const noexcept;

  std::uint64_t row_stream(std::size_t row) const noexcept {
    return derive_seed(derive_seed(stream_base_, row), generation(row));
  }

  /// Validates + bumps the generation counters (allocated on first use).
  void bump_generations(std::span<const std::uint32_t> rows);

  /// Resident bytes of the lazily allocated generation counters.
  std::size_t generation_bytes() const noexcept {
    return gens_.size() * sizeof(std::uint16_t);
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::uint64_t stream_base_;
  float scale_;
  std::vector<std::uint16_t> gens_;  ///< lazily sized on first regenerate
};

/// Resident rows: holds the full blocked matrix. Initial content is either
/// externally drawn (the legacy encoder draws) or counter-derived (the
/// materialized twin); regeneration overwrites rows in place.
class StoredProjection final : public ProjectionProvider {
 public:
  /// Wraps an externally drawn matrix (legacy sequential draw order).
  StoredProjection(kernels::BlockedMatrixF32 matrix, std::uint64_t stream_base,
                   float scale);

  /// Derives every row from its counter stream (the materialized twin).
  StoredProjection(std::size_t rows, std::size_t cols,
                   std::uint64_t stream_base, float scale);

  const float* block(std::size_t first, std::size_t /*count*/,
                     std::vector<float>& /*scratch*/) const override {
    return matrix_.data() + (first / kernels::BlockedMatrixF32::kLane) *
                                cols() * kernels::BlockedMatrixF32::kLane;
  }
  std::size_t preferred_chunk() const noexcept override { return rows(); }
  std::size_t resident_bytes() const noexcept override;
  void regenerate(std::span<const std::uint32_t> rows) override;

 protected:
  void copy_row(std::size_t row, float* dst) const override;

 private:
  kernels::BlockedMatrixF32 matrix_;
};

/// Zero-resident rows: every access derives the row from its counter stream.
class DeterministicProjection final : public ProjectionProvider {
 public:
  DeterministicProjection(std::size_t rows, std::size_t cols,
                          std::uint64_t stream_base, float scale);

  const float* block(std::size_t first, std::size_t count,
                     std::vector<float>& scratch) const override;
  std::size_t preferred_chunk() const noexcept override;
  std::size_t resident_bytes() const noexcept override;

 protected:
  void copy_row(std::size_t row, float* dst) const override {
    derive_row(row, dst);
  }
};

}  // namespace edgehd::hdc
