// Cycle-level model of the EdgeHD FPGA design (paper Section V, Figure 6).
//
// The paper implements EdgeHD in Verilog on a Kintex-7 KC705; we model that
// design's pipeline instead of synthesizing it (see DESIGN.md,
// Substitutions). The model follows the architecture blocks of Figure 6:
//
//   (A) BRAM-resident sparse weight vectors: each of the D projection rows
//       stores a contiguous window of (1-s)*n non-zeros plus a log2(n)-bit
//       start index.
//   (B) DSP-parallel multiply + tree-adder accumulation for the encoding
//       inner products, followed by a cosine lookup (LUT logic).
//   (C,E) Residual-hypervector accumulation and one-shot model update.
//   (D,F) Associative search: negation block (query bits conditionally flip
//       class-element signs), tree adder, comparator.
//
// Outputs are cycle counts per operation, a resource estimate, and a power
// estimate calibrated to the paper's 9.8 W (centralized, full dimension) and
// 0.28 W (per-node, reduced dimension) figures.
#pragma once

#include <cstdint>
#include <string>

#include "net/platform.hpp"

namespace edgehd::fpga {

/// Fabric parameters (defaults: Kintex-7 KC705-class device).
struct FpgaConfig {
  double clock_hz = 200e6;
  std::size_t dsp_slices = 840;       ///< multipliers available to encoding
  std::size_t adder_lanes = 256;      ///< fabric adders feeding the tree
  std::size_t bram_bits = 16'020 * 1024;  ///< on-chip memory budget
  double static_power_w = 0.45;       ///< device static + clocking power
  /// Dynamic power per DSP-equivalent unit at 1 Hz; calibrated so a fully
  /// occupied 840-DSP design at 200 MHz draws ~9.8 W total.
  double dynamic_power_per_unit_hz = 5.6e-11;
};

/// Resource usage of one instantiated EdgeHD design point.
struct FpgaResources {
  std::size_t dsp_used = 0;
  std::uint64_t bram_bits_used = 0;
  bool fits = true;  ///< within the configured fabric budget
};

/// Cycle/energy model of one EdgeHD design point: a fixed feature count n,
/// hypervector dimension D, class count k, and encoder sparsity window.
class FpgaModel {
 public:
  /// @param window  non-zeros per projection row ((1-s)*n of the sparse
  ///                encoder); pass n for a dense design.
  FpgaModel(FpgaConfig config, std::size_t num_features, std::size_t dim,
            std::size_t num_classes, std::size_t window);

  const FpgaConfig& config() const noexcept { return config_; }
  std::size_t dim() const noexcept { return dim_; }

  // ---- cycle counts ------------------------------------------------------

  /// Cycles to encode one feature vector: D rows of `window` MACs spread
  /// over the DSP array, plus tree-adder and cosine-LUT pipeline depth.
  std::uint64_t encode_cycles() const;

  /// Cycles for one associative search (query vs k class hypervectors):
  /// negation block + tree adder over `adder_lanes`, plus the comparator.
  std::uint64_t search_cycles() const;

  /// Cycles to fold one hypervector into a residual accumulator (initial
  /// training / online learning) — D adds over the adder lanes.
  std::uint64_t accumulate_cycles() const;

  /// Cycles to apply residuals to the model (Figure 6(E)) — k*D adds plus
  /// the per-class renormalization pass.
  std::uint64_t model_update_cycles() const;

  /// Cycles to process one training sample in the unified pipeline:
  /// encode + search + (bounded) residual accumulation.
  std::uint64_t train_sample_cycles() const;

  /// Cycles to process one inference: encode + search.
  std::uint64_t infer_sample_cycles() const;

  // ---- conversions ---------------------------------------------------------

  net::SimTime cycles_to_time(std::uint64_t cycles) const;
  double power_w() const;
  double energy_j(std::uint64_t cycles) const;

  /// Resource estimate for this design point.
  FpgaResources resources() const;

  /// Collapses the model into an effective Platform (MACs/s + power) usable
  /// by the network simulator's compute calls.
  net::Platform as_platform(std::string name) const;

 private:
  std::size_t occupied_dsps() const;

  FpgaConfig config_;
  std::size_t num_features_;
  std::size_t dim_;
  std::size_t num_classes_;
  std::size_t window_;
};

/// The centralized full-dimension design point of Section VI (D = 4000,
/// sparsity 0.8) on the default fabric.
FpgaModel central_design(std::size_t num_features, std::size_t dim,
                         std::size_t num_classes);

/// A per-node design point: a reduced-dimension instance on a small,
/// clocked-down fabric slice, matching the paper's 0.28 W per-node figure.
FpgaModel edge_design(std::size_t num_features, std::size_t dim,
                      std::size_t num_classes);

}  // namespace edgehd::fpga
