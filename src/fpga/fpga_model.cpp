#include "fpga_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace edgehd::fpga {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

std::uint64_t log2_ceil(std::uint64_t v) {
  return v <= 1 ? 0 : std::bit_width(v - 1);
}

}  // namespace

FpgaModel::FpgaModel(FpgaConfig config, std::size_t num_features,
                     std::size_t dim, std::size_t num_classes,
                     std::size_t window)
    : config_(config),
      num_features_(num_features),
      dim_(dim),
      num_classes_(num_classes),
      window_(std::min(window, num_features)) {
  if (num_features == 0 || dim == 0 || num_classes < 2 || window == 0) {
    throw std::invalid_argument("FpgaModel: invalid design point");
  }
  if (config_.dsp_slices == 0 || config_.adder_lanes == 0 ||
      config_.clock_hz <= 0.0) {
    throw std::invalid_argument("FpgaModel: invalid fabric configuration");
  }
}

std::size_t FpgaModel::occupied_dsps() const {
  // One DSP per concurrent MAC; a design never instantiates more row-units
  // than it has rows (D) or the fabric has slices.
  return std::min<std::size_t>(config_.dsp_slices, dim_ * window_);
}

std::uint64_t FpgaModel::encode_cycles() const {
  const std::uint64_t total_macs =
      static_cast<std::uint64_t>(dim_) * window_;
  const std::uint64_t mac_cycles = ceil_div(total_macs, occupied_dsps());
  // Pipeline tail: adder tree over the window plus the cosine LUT stage and
  // the sign binarizer.
  const std::uint64_t tail = log2_ceil(window_) + 2;
  return mac_cycles + tail;
}

std::uint64_t FpgaModel::search_cycles() const {
  // Negation block + accumulation: k classes, D elements each, adder_lanes
  // per cycle; tree depth tail; one comparator pass over k.
  const std::uint64_t adds =
      static_cast<std::uint64_t>(num_classes_) * dim_;
  return ceil_div(adds, config_.adder_lanes) + log2_ceil(config_.adder_lanes) +
         num_classes_;
}

std::uint64_t FpgaModel::accumulate_cycles() const {
  return ceil_div(dim_, config_.adder_lanes);
}

std::uint64_t FpgaModel::model_update_cycles() const {
  // Apply residuals to all k classes and re-normalize each (one extra pass).
  const std::uint64_t adds =
      static_cast<std::uint64_t>(num_classes_) * dim_ * 2;
  return ceil_div(adds, config_.adder_lanes);
}

std::uint64_t FpgaModel::train_sample_cycles() const {
  return encode_cycles() + search_cycles() + accumulate_cycles();
}

std::uint64_t FpgaModel::infer_sample_cycles() const {
  return encode_cycles() + search_cycles();
}

net::SimTime FpgaModel::cycles_to_time(std::uint64_t cycles) const {
  const double seconds = static_cast<double>(cycles) / config_.clock_hz;
  return static_cast<net::SimTime>(std::llround(seconds * 1e9));
}

double FpgaModel::power_w() const {
  return config_.static_power_w +
         config_.dynamic_power_per_unit_hz *
             static_cast<double>(occupied_dsps()) * config_.clock_hz;
}

double FpgaModel::energy_j(std::uint64_t cycles) const {
  return power_w() * static_cast<double>(cycles) / config_.clock_hz;
}

FpgaResources FpgaModel::resources() const {
  FpgaResources r;
  r.dsp_used = occupied_dsps();
  // BRAM: sparse weight rows (window 16-bit fixed-point values + a start
  // index, Section V-A), the class hypervectors, and the residual
  // hypervectors (32-bit accumulators).
  const std::uint64_t weight_bits =
      static_cast<std::uint64_t>(dim_) *
      (window_ * 16 + log2_ceil(num_features_));
  const std::uint64_t model_bits =
      static_cast<std::uint64_t>(num_classes_) * dim_ * 32 * 2;
  r.bram_bits_used = weight_bits + model_bits;
  r.fits = r.dsp_used <= config_.dsp_slices &&
           r.bram_bits_used <= config_.bram_bits;
  return r;
}

net::Platform FpgaModel::as_platform(std::string name) const {
  // Effective MAC rate: the encode stage dominates, running occupied_dsps
  // MACs per cycle.
  const double macs_per_second =
      static_cast<double>(occupied_dsps()) * config_.clock_hz;
  return net::Platform{std::move(name), macs_per_second, power_w()};
}

FpgaModel central_design(std::size_t num_features, std::size_t dim,
                         std::size_t num_classes) {
  const std::size_t window = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(0.2 * num_features)));
  return FpgaModel(FpgaConfig{}, num_features, dim, num_classes, window);
}

FpgaModel edge_design(std::size_t num_features, std::size_t dim,
                      std::size_t num_classes) {
  // Small fabric slice, clocked down: calibrated to ~0.28 W per node.
  FpgaConfig cfg;
  cfg.clock_hz = 100e6;
  cfg.dsp_slices = 32;
  cfg.adder_lanes = 64;
  cfg.static_power_w = 0.10;
  const std::size_t window = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(0.2 * num_features)));
  return FpgaModel(cfg, num_features, dim, num_classes, window);
}

}  // namespace edgehd::fpga
