#include "dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "hdc/random.hpp"

namespace edgehd::data {

using hdc::Rng;
using hdc::derive_seed;

std::size_t Dataset::partition_offset(std::size_t i) const {
  if (i >= partitions.size()) {
    throw std::out_of_range("Dataset: partition index out of range");
  }
  return std::accumulate(partitions.begin(), partitions.begin() + i,
                         std::size_t{0});
}

namespace {

/// Splits n features into `nodes` near-equal contiguous slices.
std::vector<std::size_t> even_partition(std::size_t n, std::size_t nodes) {
  std::vector<std::size_t> parts(nodes, n / nodes);
  for (std::size_t i = 0; i < n % nodes; ++i) ++parts[i];
  return parts;
}

const std::vector<DatasetSpec>& specs_table() {
  // Difficulty knobs are tuned so the synthetic stand-ins land in the same
  // accuracy neighbourhood the paper reports (high-90s for MNIST/PECAN-like
  // workloads, low-90s for the harder ones). Only orderings and trends are
  // asserted anywhere; see DESIGN.md.
  static const std::vector<DatasetSpec> kSpecs = {
      {DatasetId::kMnist, "MNIST", 784, 10, 0, 60000, 10000,
       "Handwritten recognition", 4.4F, 0.48F, 0.45F},
      {DatasetId::kIsolet, "ISOLET", 617, 26, 0, 6238, 1559,
       "Voice recognition", 3.6F, 0.60F, 0.50F},
      {DatasetId::kUciHar, "UCIHAR", 561, 12, 0, 6213, 1554,
       "Activity recognition (mobile)", 4.0F, 0.55F, 0.48F},
      {DatasetId::kExtra, "EXTRA", 225, 4, 0, 146869, 16343,
       "Smartphone context recognition", 3.2F, 0.68F, 0.55F},
      {DatasetId::kFace, "FACE", 608, 2, 0, 522441, 2494,
       "Face recognition", 3.6F, 0.58F, 0.55F},
      {DatasetId::kPecan, "PECAN", 312, 3, 312, 22290, 5574,
       "Urban electricity prediction", 4.4F, 0.45F, 0.50F},
      {DatasetId::kPamap2, "PAMAP2", 75, 5, 3, 611142, 101582,
       "Activity recognition (IMU)", 4.2F, 0.50F, 0.55F},
      {DatasetId::kApri, "APRI", 36, 2, 3, 67017, 1241,
       "Performance identification", 3.8F, 0.58F, 0.60F},
      {DatasetId::kPdp, "PDP", 60, 2, 5, 17385, 7334,
       "Power demand prediction", 4.0F, 0.55F, 0.58F},
  };
  return kSpecs;
}

/// Latent-mixture generator shared by all workloads.
///
/// Class information enters the latent vector z through two channels:
///
///  * a *centroid* channel — z is shifted by a per-class mean, scaled by
///    (1 - xor_fraction); any additive model can read this; and
///  * an *XOR* channel — the bits of the label index are written into pairs
///    of latent coordinates as equal/opposite sign constraints with a
///    magnitude margin. Conditioned on the class, each coordinate of an XOR
///    pair is a symmetric two-sided mixture, so its mean is zero and
///    per-feature marginals carry (almost) no class signal: only feature
///    interactions do. This channel is what separates kernel methods (the
///    paper's RBF encoder, RBF-SVM, DNN) from additive ones (linear-level
///    HD, boosted stumps), reproducing the Figure 7 gap.
///
/// Features are a fixed random non-linear map of z (saturating +
/// oscillatory), so classes are curved manifolds in feature space, and all
/// leaves of a hierarchical deployment observe heterogeneous non-linear
/// views of the same underlying state (the smart-home premise).
class MixtureGenerator {
 public:
  MixtureGenerator(std::size_t num_features, std::size_t num_classes,
                   std::uint64_t seed, float separation, float noise,
                   float xor_fraction)
      : num_features_(num_features),
        num_classes_(num_classes),
        noise_(noise),
        latent_dim_(std::max<std::size_t>(12, num_classes + 6)),
        xor_bits_(num_classes <= 1
                      ? 0
                      : static_cast<std::size_t>(std::ceil(
                            std::log2(static_cast<double>(num_classes))))),
        xor_margin_(separation * 0.55F * xor_fraction) {
    const float centroid_scale = separation * 0.5F * (1.0F - xor_fraction);
    Rng centroid_rng(derive_seed(seed, 100));
    centroids_.resize(num_classes_ * latent_dim_);
    for (auto& c : centroids_) c = centroid_rng.gaussian() * centroid_scale;
    // XOR pairs occupy the leading 2 * xor_bits_ latent coordinates; keep
    // the centroid channel out of them so the two channels stay orthogonal.
    for (std::size_t c = 0; c < num_classes_; ++c) {
      for (std::size_t i = 0; i < 2 * xor_bits_ && i < latent_dim_; ++i) {
        centroids_[c * latent_dim_ + i] = 0.0F;
      }
    }

    Rng map_rng(derive_seed(seed, 200));
    w1_.resize(num_features_ * latent_dim_);
    for (auto& w : w1_) {
      w = map_rng.gaussian() / std::sqrt(static_cast<float>(latent_dim_));
    }
    w2_.resize(num_features_ * latent_dim_);
    for (auto& w : w2_) {
      w = map_rng.gaussian() / std::sqrt(static_cast<float>(latent_dim_));
    }
    b1_.resize(num_features_);
    for (auto& b : b1_) b = map_rng.uniform(-1.0F, 1.0F);
  }

  std::vector<float> sample(std::size_t label, Rng& rng) const {
    std::vector<float> z(latent_dim_);
    const float* mu = centroids_.data() + label * latent_dim_;
    for (std::size_t i = 0; i < latent_dim_; ++i) z[i] = mu[i] + rng.gaussian();

    // Write the label's bits into the XOR pairs: equal signs for 0, opposite
    // for 1, with a magnitude margin; the pair's common sign is random, so
    // each coordinate's class-conditional mean is exactly zero.
    for (std::size_t bit = 0; bit < xor_bits_; ++bit) {
      const std::size_t p = 2 * bit;
      if (p + 1 >= latent_dim_) break;
      const bool set = ((label >> bit) & 1u) != 0;
      const float s1 = rng.sign() > 0 ? 1.0F : -1.0F;
      const float s2 = set ? -s1 : s1;
      z[p] = s1 * (xor_margin_ + std::abs(rng.gaussian()));
      z[p + 1] = s2 * (xor_margin_ + std::abs(rng.gaussian()));
    }

    std::vector<float> x(num_features_);
    for (std::size_t f = 0; f < num_features_; ++f) {
      const float* row1 = w1_.data() + f * latent_dim_;
      const float* row2 = w2_.data() + f * latent_dim_;
      float a1 = b1_[f];
      float a2 = 0.0F;
      for (std::size_t i = 0; i < latent_dim_; ++i) {
        a1 += row1[i] * z[i];
        a2 += row2[i] * z[i];
      }
      // Saturating + oscillatory observation model: curved class manifolds.
      x[f] = std::tanh(a1) + 0.5F * std::sin(a2) + noise_ * rng.gaussian();
    }
    return x;
  }

 private:
  std::size_t num_features_;
  std::size_t num_classes_;
  float noise_;
  std::size_t latent_dim_;
  std::size_t xor_bits_;
  float xor_margin_;
  std::vector<float> centroids_;
  std::vector<float> w1_;
  std::vector<float> w2_;
  std::vector<float> b1_;
};

void fill_split(const MixtureGenerator& gen, std::size_t num_classes,
                std::size_t count, Rng& rng,
                std::vector<std::vector<float>>& xs,
                std::vector<std::size_t>& ys) {
  xs.reserve(count);
  ys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Round-robin labels keep every class populated even for tiny splits;
    // order is then shuffled below.
    const std::size_t label = i % num_classes;
    xs.push_back(gen.sample(label, rng));
    ys.push_back(label);
  }
  // Shuffle jointly so splits are not label-ordered.
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<std::vector<float>> sx(count);
  std::vector<std::size_t> sy(count);
  for (std::size_t i = 0; i < count; ++i) {
    sx[i] = std::move(xs[order[i]]);
    sy[i] = ys[order[i]];
  }
  xs = std::move(sx);
  ys = std::move(sy);
}

std::size_t scaled(std::size_t paper, std::size_t cap) {
  if (cap == 0) return paper;
  return std::min(paper, cap);
}

}  // namespace

const DatasetSpec& spec(DatasetId id) {
  for (const auto& s : specs_table()) {
    if (s.id == id) return s;
  }
  throw std::invalid_argument("spec: unknown dataset id");
}

const std::vector<DatasetSpec>& all_specs() { return specs_table(); }

std::vector<DatasetId> hierarchical_ids() {
  return {DatasetId::kPecan, DatasetId::kPamap2, DatasetId::kApri,
          DatasetId::kPdp};
}

Dataset make_synthetic(std::string name, std::size_t num_features,
                       std::size_t num_classes,
                       std::vector<std::size_t> partitions,
                       std::size_t train_size, std::size_t test_size,
                       std::uint64_t seed, float class_separation,
                       float observation_noise, float xor_fraction) {
  if (num_features == 0 || num_classes < 2) {
    throw std::invalid_argument(
        "make_synthetic: need features and >= 2 classes");
  }
  if (partitions.empty()) partitions = {num_features};
  if (std::accumulate(partitions.begin(), partitions.end(), std::size_t{0}) !=
      num_features) {
    throw std::invalid_argument("make_synthetic: partitions must sum to n");
  }
  Dataset ds;
  ds.name = std::move(name);
  ds.num_features = num_features;
  ds.num_classes = num_classes;
  ds.partitions = std::move(partitions);

  MixtureGenerator gen(num_features, num_classes, seed, class_separation,
                       observation_noise, xor_fraction);
  Rng train_rng(derive_seed(seed, 1));
  Rng test_rng(derive_seed(seed, 2));
  fill_split(gen, num_classes, train_size, train_rng, ds.train_x, ds.train_y);
  fill_split(gen, num_classes, test_size, test_rng, ds.test_x, ds.test_y);
  return ds;
}

Dataset make_dataset(DatasetId id, std::uint64_t seed, GenOptions options) {
  const DatasetSpec& s = spec(id);
  std::vector<std::size_t> parts =
      s.end_nodes == 0 ? std::vector<std::size_t>{s.num_features}
                       : even_partition(s.num_features, s.end_nodes);
  Dataset ds = make_synthetic(
      s.name, s.num_features, s.num_classes, std::move(parts),
      scaled(s.paper_train, options.max_train),
      scaled(s.paper_test, options.max_test),
      derive_seed(seed, static_cast<std::uint64_t>(s.id)),
      s.class_separation, s.observation_noise, s.xor_fraction);
  zscore_normalize(ds);
  return ds;
}

void zscore_normalize(Dataset& ds) {
  if (ds.train_x.empty()) return;
  const std::size_t n = ds.num_features;
  std::vector<double> mean(n, 0.0);
  std::vector<double> var(n, 0.0);
  for (const auto& x : ds.train_x) {
    for (std::size_t f = 0; f < n; ++f) mean[f] += x[f];
  }
  for (auto& m : mean) m /= static_cast<double>(ds.train_x.size());
  for (const auto& x : ds.train_x) {
    for (std::size_t f = 0; f < n; ++f) {
      const double d = x[f] - mean[f];
      var[f] += d * d;
    }
  }
  std::vector<float> inv_std(n);
  for (std::size_t f = 0; f < n; ++f) {
    const double sd = std::sqrt(var[f] / static_cast<double>(ds.train_x.size()));
    inv_std[f] = sd > 1e-9 ? static_cast<float>(1.0 / sd) : 1.0F;
  }
  auto apply = [&](std::vector<std::vector<float>>& xs) {
    for (auto& x : xs) {
      for (std::size_t f = 0; f < n; ++f) {
        x[f] = (x[f] - static_cast<float>(mean[f])) * inv_std[f];
      }
    }
  };
  apply(ds.train_x);
  apply(ds.test_x);
}

Dataset load_csv(const std::string& path, double train_fraction) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_csv: cannot open " + path);
  }
  std::vector<std::vector<float>> xs;
  std::vector<std::size_t> ys;
  std::size_t max_label = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<float> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      row.push_back(std::stof(cell));
    }
    if (row.size() < 2) {
      throw std::runtime_error("load_csv: row needs >= 1 feature + label");
    }
    const auto label = static_cast<std::size_t>(std::lround(row.back()));
    row.pop_back();
    max_label = std::max(max_label, label);
    xs.push_back(std::move(row));
    ys.push_back(label);
  }
  if (xs.empty()) {
    throw std::runtime_error("load_csv: empty file " + path);
  }
  const std::size_t n = xs.front().size();
  for (const auto& row : xs) {
    if (row.size() != n) {
      throw std::runtime_error("load_csv: ragged rows in " + path);
    }
  }
  Dataset ds;
  ds.name = path;
  ds.num_features = n;
  ds.num_classes = max_label + 1;
  ds.partitions = {n};
  const auto split = static_cast<std::size_t>(
      static_cast<double>(xs.size()) * train_fraction);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i < split) {
      ds.train_x.push_back(std::move(xs[i]));
      ds.train_y.push_back(ys[i]);
    } else {
      ds.test_x.push_back(std::move(xs[i]));
      ds.test_y.push_back(ys[i]);
    }
  }
  return ds;
}

}  // namespace edgehd::data
