// Dataset substrate: containers, specs for the nine Table-I workloads, and
// seeded synthetic generators that stand in for them.
//
// The offline build environment has no access to MNIST/ISOLET/PECAN/... so
// every workload is generated synthetically with the *same shape* as the
// paper's Table I: feature count n, class count K, end-node feature
// partitioning, and (scaled) train/test sizes. Class structure is a latent
// Gaussian mixture pushed through a fixed random non-linear feature map, so
// classes are non-linearly separable in feature space — the property the
// paper's RBF encoder exploits and the linear-HD baseline lacks. See
// DESIGN.md "Substitutions" for the fidelity argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edgehd::data {

/// A labelled feature-vector dataset with train/test splits and an optional
/// partition of features over IoT end nodes.
struct Dataset {
  std::string name;
  std::size_t num_features = 0;
  std::size_t num_classes = 0;

  /// Size of each end node's feature slice, in order; features
  /// [offset_i, offset_i + partitions[i]) belong to node i. Sums to
  /// num_features. Single-element for non-hierarchical datasets.
  std::vector<std::size_t> partitions;

  std::vector<std::vector<float>> train_x;
  std::vector<std::size_t> train_y;
  std::vector<std::vector<float>> test_x;
  std::vector<std::size_t> test_y;

  std::size_t train_size() const noexcept { return train_x.size(); }
  std::size_t test_size() const noexcept { return test_x.size(); }

  /// Feature offset of partition `i` (prefix sum of partitions).
  std::size_t partition_offset(std::size_t i) const;
};

/// Identifiers for the nine Table-I workloads.
enum class DatasetId : std::uint8_t {
  kMnist,
  kIsolet,
  kUciHar,
  kExtra,
  kFace,
  kPecan,
  kPamap2,
  kApri,
  kPdp,
};

/// Static description of a workload, mirroring Table I plus the generator's
/// difficulty knobs.
struct DatasetSpec {
  DatasetId id;
  std::string name;
  std::size_t num_features;   ///< n
  std::size_t num_classes;    ///< K
  std::size_t end_nodes;      ///< Table-I "# End Nodes"; 0 = not hierarchical
  std::size_t paper_train;    ///< Table-I train size
  std::size_t paper_test;     ///< Table-I test size
  std::string description;
  // Generator difficulty: larger separation and smaller noise -> easier.
  float class_separation;
  float observation_noise;
  /// Fraction of the class information carried by XOR-arranged latent pairs
  /// (interaction-only signal with uninformative per-feature marginals);
  /// the remainder is plain centroid separation. Larger values handicap
  /// additive models (linear-level HD, boosted stumps) but not kernel
  /// methods — the axis Figure 7 sweeps implicitly.
  float xor_fraction;
};

/// Spec lookup for one workload.
const DatasetSpec& spec(DatasetId id);

/// All nine specs in Table-I order.
const std::vector<DatasetSpec>& all_specs();

/// Hierarchical workloads used by Table II / Figures 8–13
/// (PECAN, PAMAP2, APRI, PDP).
std::vector<DatasetId> hierarchical_ids();

/// Generator options.
struct GenOptions {
  /// Cap on generated train/test sizes; the paper's sizes are scaled down
  /// proportionally to fit a laptop-scale run. 0 = use paper sizes verbatim.
  std::size_t max_train = 3000;
  std::size_t max_test = 1000;
};

/// Generates the synthetic stand-in for a Table-I workload. Deterministic in
/// (id, seed, options).
Dataset make_dataset(DatasetId id, std::uint64_t seed, GenOptions options = {});

/// Generates a custom synthetic mixture dataset (used by tests/examples that
/// want full control over the shape).
Dataset make_synthetic(std::string name, std::size_t num_features,
                       std::size_t num_classes,
                       std::vector<std::size_t> partitions,
                       std::size_t train_size, std::size_t test_size,
                       std::uint64_t seed, float class_separation = 3.0F,
                       float observation_noise = 0.5F,
                       float xor_fraction = 0.4F);

/// Z-score normalizes every feature in place, using statistics from the
/// training split only (test features reuse the train statistics, as a
/// deployed system must).
void zscore_normalize(Dataset& ds);

/// Loads a headerless CSV whose last column is an integer label; splits the
/// first `train_fraction` rows into train and the rest into test.
Dataset load_csv(const std::string& path, double train_fraction = 0.8);

}  // namespace edgehd::data
