// Low-overhead metrics registry — the single source of truth for every
// number the system reports (byte counters, escalation rates, latency
// histograms). Design goals, in order:
//
//   1. Hot paths touch no shared state. Counter::inc and Histogram::observe
//      land in a per-thread shard (a flat array of relaxed atomics owned by
//      the calling thread); readers sum across shards. An increment costs a
//      thread-local lookup plus one uncontended fetch_add (~2 ns).
//   2. Deterministic export. Integer slot sums are order-independent, so
//      `to_json` is byte-identical across runs regardless of thread
//      interleaving — for every metric registered as *stable*. Metrics whose
//      value legitimately depends on scheduling or wall clock (steal counts,
//      latency histograms) are registered volatile and can be excluded:
//      `to_json(/*include_volatile=*/false)` is the determinism-suite view.
//   3. Compile-time kill switch. Under -DEDGEHD_OBS=OFF the build defines
//      EDGEHD_OBS_DISABLED; every handle method collapses to an inline no-op
//      and the registry interns nothing, so call sites need no #ifdefs.
//
// Conventions: counters are monotonic uint64; gauges are last-write-wins
// doubles set from non-concurrent contexts; histograms hold fixed bucket
// bounds (bucket i counts observations v with v <= bounds[i], plus one
// overflow bucket) and an integer sum of llround(v) — exact and commutative,
// so histogram export is deterministic too. Names are dotted paths
// ("net.bytes_tx"); the full catalogue lives in DESIGN.md §8.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace edgehd::obs {

#if defined(EDGEHD_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

class MetricsRegistry;

/// Monotonic counter handle. Cheap to copy; a default-constructed handle is
/// a no-op sink (as is every handle when observability is compiled out).
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const noexcept {
    if constexpr (kEnabled) {
      if (reg_ != nullptr) add(n);
    } else {
      (void)n;
    }
  }
  /// Sum over all thread shards. 0 for an empty handle.
  std::uint64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  void add(std::uint64_t n) const noexcept;
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-write-wins double. Gauges live centrally (not sharded): they are set
/// from non-concurrent contexts (bench drivers, pool bookkeeping under its
/// own lock), never from per-sample hot paths.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept {
    if constexpr (kEnabled) {
      if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  double value() const noexcept {
    if constexpr (kEnabled) {
      return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0.0;
    } else {
      return 0.0;
    }
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Point summary of a histogram's state (count, integer sum and the standard
/// latency quantiles), exported in one consistent snapshot.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Fixed-bucket histogram handle. observe(v) increments the bucket of the
/// first bound >= v (or the overflow bucket) and adds llround(v) to the
/// integer sum — all shard-local, all exact.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const noexcept;
  std::uint64_t count() const;             ///< total observations
  std::uint64_t sum() const;               ///< sum of llround(v)
  std::vector<std::uint64_t> counts() const;  ///< per-bucket (bounds + overflow)

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank: bucket [lo, hi] with c observations and
  /// k of the target's rank inside it reports lo + (hi - lo) * k / c. The
  /// first bucket interpolates from 0 (or from its own bound when that is
  /// negative); ranks landing in the overflow bucket report the last bound
  /// (the histogram cannot see past it). Empty histograms report 0.
  double quantile(double q) const;

  /// count/sum/p50/p90/p95/p99 from one locked snapshot of the buckets, so
  /// the quantiles are mutually consistent even under concurrent writers.
  HistogramSummary summary() const;

 private:
  friend class MetricsRegistry;
  struct Def;
  Histogram(MetricsRegistry* reg, const Def* def) : reg_(reg), def_(def) {}
  MetricsRegistry* reg_ = nullptr;
  const Def* def_ = nullptr;
};

class MetricsRegistry {
 public:
  /// Slot capacity bounds counters + histogram buckets (each shard allocates
  /// the full array up front so it can never reallocate under a writer).
  static constexpr std::size_t kDefaultSlotCapacity = 16384;

  explicit MetricsRegistry(std::size_t slot_capacity = kDefaultSlotCapacity);
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns a metric by name (idempotent: the same name returns the same
  /// handle). A name registered as a different metric kind throws. `stable`
  /// marks the value as deterministic for a fixed (seed, plan, worker-count)
  /// run; pass false for scheduling/wall-clock dependent metrics.
  Counter counter(const std::string& name, bool stable = true);
  Gauge gauge(const std::string& name, bool stable = true);
  Histogram histogram(const std::string& name, std::vector<double> bounds,
                      bool stable = true);

  /// Free-form string annotation (e.g. the resolved kernel backend).
  void set_label(const std::string& key, const std::string& value);

  /// Point lookups by name; 0 / "" when absent.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  std::string label(const std::string& key) const;

  /// Handle to an already-registered histogram (for readers that did not
  /// intern it themselves, e.g. benches reporting quantiles of histograms
  /// owned by the core). Returns an empty no-op handle when the name is
  /// absent or registered as another kind.
  Histogram find_histogram(const std::string& name);

  /// Stable-ordered JSON (keys sorted, fixed number formatting): identical
  /// state serializes to identical bytes. include_volatile=false drops every
  /// metric registered with stable=false — the determinism-suite view.
  std::string to_json(bool include_volatile = true) const;

  /// Zeroes every counter/histogram slot and gauge; definitions and labels
  /// survive. Callers must be quiescent (no concurrent writers).
  void reset();

  /// The process-wide registry every built-in hook reports to.
  static MetricsRegistry& global();

 private:
  friend class Counter;
  friend class Histogram;
  struct Shard;

  struct CounterDef {
    std::string name;
    std::uint32_t slot = 0;
    bool stable = true;
  };
  struct GaugeCell {
    std::string name;
    std::atomic<double> value{0.0};
    bool stable = true;
  };

  std::atomic<std::uint64_t>* my_slots();
  std::atomic<std::uint64_t>* register_shard();
  std::uint32_t take_slots(std::size_t n);
  std::uint64_t sum_slot(std::uint32_t slot) const;  // caller holds mu_
  void add_slot(std::uint32_t slot, std::uint64_t n) noexcept;

  const std::uint64_t id_;  ///< process-unique, never reused (TLS safety)
  const std::size_t slot_capacity_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// name -> (kind, index into the matching deque)
  std::map<std::string, std::pair<char, std::uint32_t>> names_;
  std::deque<CounterDef> counters_;
  std::deque<GaugeCell> gauges_;
  std::deque<Histogram::Def> hists_;
  std::map<std::string, std::string> labels_;
  std::uint32_t next_slot_ = 0;
};

struct Histogram::Def {
  std::string name;
  std::vector<double> bounds;     ///< ascending upper bounds
  std::uint32_t first_slot = 0;   ///< bounds.size()+1 buckets, then the sum
  bool stable = true;
};

/// RAII wall-clock timer feeding a histogram in nanoseconds. The target
/// histogram should be registered volatile (wall time is never stable).
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram h) : h_(h) {
    if constexpr (kEnabled) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimerNs() {
    if constexpr (kEnabled) {
      const auto dt = std::chrono::steady_clock::now() - t0_;
      h_.observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
    }
  }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram h_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace edgehd::obs
