#include "trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace edgehd::obs {

namespace {

int& suppress_depth() noexcept {
  thread_local int depth = 0;
  return depth;
}

}  // namespace

TraceSuppress::TraceSuppress() noexcept {
  if constexpr (kEnabled) ++suppress_depth();
}

TraceSuppress::~TraceSuppress() {
  if constexpr (kEnabled) --suppress_depth();
}

bool TraceSuppress::active() noexcept {
  if constexpr (kEnabled) {
    return suppress_depth() > 0;
  } else {
    return true;
  }
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::should_emit() const noexcept {
  if constexpr (!kEnabled) return false;
  return enabled_.load(std::memory_order_relaxed) && !TraceSuppress::active();
}

std::int64_t Tracer::resolve(std::int64_t t) {
  return t == kAutoTime ? static_cast<std::int64_t>(++tick_) : t;
}

std::uint64_t Tracer::begin(const char* name, std::int64_t t,
                            std::uint64_t parent, std::uint64_t arg0,
                            std::uint64_t arg1) {
  if (!should_emit()) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  TraceEvent ev;
  ev.id = next_id_++;
  ev.parent = parent;
  ev.name = name;
  ev.t_begin = resolve(t);
  ev.t_end = -1;
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  buf_.push_back(ev);
  if (buf_.size() > capacity_) buf_.pop_front();
  return ev.id;
}

void Tracer::end(std::uint64_t id, std::int64_t t) {
  if constexpr (!kEnabled) return;
  if (id == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (buf_.empty() || id < buf_.front().id) return;  // fell off the ring
  const std::size_t idx = static_cast<std::size_t>(id - buf_.front().id);
  if (idx >= buf_.size()) return;
  buf_[idx].t_end = resolve(t);
}

std::uint64_t Tracer::instant(const char* name, std::int64_t t,
                              std::uint64_t parent, std::uint64_t arg0,
                              std::uint64_t arg1) {
  if (!should_emit()) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  TraceEvent ev;
  ev.id = next_id_++;
  ev.parent = parent;
  ev.name = name;
  ev.t_begin = resolve(t);
  ev.t_end = ev.t_begin;
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  buf_.push_back(ev);
  if (buf_.size() > capacity_) buf_.pop_front();
  return ev.id;
}

void Tracer::set_enabled(bool on) noexcept {
  if constexpr (!kEnabled) return;
  enabled_.store(on, std::memory_order_relaxed);
}

bool Tracer::enabled() const noexcept {
  if constexpr (!kEnabled) return false;
  return enabled_.load(std::memory_order_relaxed);
}

void Tracer::clear() {
  if constexpr (!kEnabled) return;
  std::lock_guard<std::mutex> lk(mu_);
  buf_.clear();
  next_id_ = 1;
  tick_ = 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {buf_.begin(), buf_.end()};
}

std::uint64_t Tracer::emitted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_id_ - 1;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return (next_id_ - 1) - buf_.size();
}

std::string Tracer::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& ev : buf_) {
    if (!first) out += ',';
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"id\":%" PRIu64 ",\"parent\":%" PRIu64
                  ",\"name\":\"%s\",\"t_begin\":%" PRId64 ",\"t_end\":%" PRId64
                  ",\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64 "}",
                  ev.id, ev.parent, ev.name, ev.t_begin, ev.t_end, ev.arg0,
                  ev.arg1);
    out += buf;
  }
  out += ']';
  return out;
}

}  // namespace edgehd::obs
