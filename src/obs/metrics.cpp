#include "metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace edgehd::obs {

// ---- shards ----------------------------------------------------------------

struct MetricsRegistry::Shard {
  explicit Shard(std::size_t n)
      : slots(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      slots[i].store(0, std::memory_order_relaxed);
    }
  }
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
};

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

/// One entry per (thread, registry) pair the thread has written to. The
/// registry id is process-unique and never reused, so an entry for a
/// destroyed registry can never be mistaken for a live one — it just stops
/// matching and its dangling pointer is never dereferenced.
struct TlsShardRef {
  std::uint64_t reg_id;
  std::atomic<std::uint64_t>* slots;
};
thread_local std::vector<TlsShardRef> t_shards;

}  // namespace

std::atomic<std::uint64_t>* MetricsRegistry::my_slots() {
  for (const TlsShardRef& e : t_shards) {
    if (e.reg_id == id_) return e.slots;
  }
  return register_shard();
}

std::atomic<std::uint64_t>* MetricsRegistry::register_shard() {
  auto shard = std::make_unique<Shard>(slot_capacity_);
  std::atomic<std::uint64_t>* slots = shard->slots.get();
  {
    std::lock_guard<std::mutex> lk(mu_);
    shards_.push_back(std::move(shard));
  }
  t_shards.push_back(TlsShardRef{id_, slots});
  return slots;
}

void MetricsRegistry::add_slot(std::uint32_t slot, std::uint64_t n) noexcept {
  my_slots()[slot].fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::sum_slot(std::uint32_t slot) const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint32_t MetricsRegistry::take_slots(std::size_t n) {
  if (next_slot_ + n > slot_capacity_) {
    throw std::length_error("MetricsRegistry: slot capacity exhausted");
  }
  const std::uint32_t first = next_slot_;
  next_slot_ += static_cast<std::uint32_t>(n);
  return first;
}

// ---- construction / interning ----------------------------------------------

MetricsRegistry::MetricsRegistry(std::size_t slot_capacity)
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)),
      slot_capacity_(slot_capacity) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

Counter MetricsRegistry::counter(const std::string& name, bool stable) {
  if constexpr (!kEnabled) return {};
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = names_.find(name); it != names_.end()) {
    if (it->second.first != 'c') {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered as another kind");
    }
    return Counter(this, counters_[it->second.second].slot);
  }
  const std::uint32_t slot = take_slots(1);
  names_.emplace(name,
                 std::make_pair('c', static_cast<std::uint32_t>(counters_.size())));
  counters_.push_back(CounterDef{name, slot, stable});
  return Counter(this, slot);
}

Gauge MetricsRegistry::gauge(const std::string& name, bool stable) {
  if constexpr (!kEnabled) return {};
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = names_.find(name); it != names_.end()) {
    if (it->second.first != 'g') {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered as another kind");
    }
    return Gauge(&gauges_[it->second.second].value);
  }
  names_.emplace(name,
                 std::make_pair('g', static_cast<std::uint32_t>(gauges_.size())));
  GaugeCell& cell = gauges_.emplace_back();
  cell.name = name;
  cell.stable = stable;
  return Gauge(&cell.value);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds, bool stable) {
  if constexpr (!kEnabled) {
    (void)stable;
    return {};
  }
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("MetricsRegistry: histogram bounds not sorted");
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = names_.find(name); it != names_.end()) {
    if (it->second.first != 'h') {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered as another kind");
    }
    return Histogram(this, &hists_[it->second.second]);
  }
  // bounds.size() buckets + overflow + the integer sum slot.
  const std::uint32_t first = take_slots(bounds.size() + 2);
  names_.emplace(name,
                 std::make_pair('h', static_cast<std::uint32_t>(hists_.size())));
  Histogram::Def& def = hists_.emplace_back();
  def.name = name;
  def.bounds = std::move(bounds);
  def.first_slot = first;
  def.stable = stable;
  return Histogram(this, &def);
}

void MetricsRegistry::set_label(const std::string& key,
                                const std::string& value) {
  if constexpr (!kEnabled) return;
  std::lock_guard<std::mutex> lk(mu_);
  labels_[key] = value;
}

// ---- handle operations -----------------------------------------------------

void Counter::add(std::uint64_t n) const noexcept { reg_->add_slot(slot_, n); }

std::uint64_t Counter::value() const {
  if constexpr (!kEnabled) return 0;
  if (reg_ == nullptr) return 0;
  std::lock_guard<std::mutex> lk(reg_->mu_);
  return reg_->sum_slot(slot_);
}

void Histogram::observe(double v) const noexcept {
  if constexpr (kEnabled) {
    if (reg_ == nullptr) return;
    const auto& bounds = def_->bounds;
    const auto bucket = static_cast<std::uint32_t>(
        std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
    auto* slots = reg_->my_slots();
    slots[def_->first_slot + bucket].fetch_add(1, std::memory_order_relaxed);
    const auto add = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llround(v)));
    slots[def_->first_slot + bounds.size() + 1].fetch_add(
        add, std::memory_order_relaxed);
  } else {
    (void)v;
  }
}

std::uint64_t Histogram::count() const {
  if constexpr (!kEnabled) return 0;
  if (reg_ == nullptr) return 0;
  std::lock_guard<std::mutex> lk(reg_->mu_);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= def_->bounds.size(); ++b) {
    total += reg_->sum_slot(def_->first_slot + static_cast<std::uint32_t>(b));
  }
  return total;
}

std::uint64_t Histogram::sum() const {
  if constexpr (!kEnabled) return 0;
  if (reg_ == nullptr) return 0;
  std::lock_guard<std::mutex> lk(reg_->mu_);
  return reg_->sum_slot(def_->first_slot +
                        static_cast<std::uint32_t>(def_->bounds.size()) + 1);
}

namespace {

/// Shared quantile engine over one consistent (bounds, counts) snapshot.
double quantile_from(const std::vector<double>& bounds,
                     const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double prev = cum;
    cum += static_cast<double>(counts[b]);
    if (cum >= rank && counts[b] > 0) {
      if (b == bounds.size()) {
        // Overflow bucket: the histogram cannot see past its last bound.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double hi = bounds[b];
      const double lo = b == 0 ? std::min(0.0, hi) : bounds[b - 1];
      return lo + (hi - lo) * ((rank - prev) / static_cast<double>(counts[b]));
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

double Histogram::quantile(double q) const {
  if constexpr (!kEnabled) return 0.0;
  if (reg_ == nullptr) return 0.0;
  return quantile_from(def_->bounds, counts(), q);
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  if constexpr (!kEnabled) return s;
  if (reg_ == nullptr) return s;
  std::vector<std::uint64_t> snapshot;
  {
    std::lock_guard<std::mutex> lk(reg_->mu_);
    snapshot.resize(def_->bounds.size() + 1);
    for (std::size_t b = 0; b < snapshot.size(); ++b) {
      snapshot[b] =
          reg_->sum_slot(def_->first_slot + static_cast<std::uint32_t>(b));
    }
    s.sum = reg_->sum_slot(def_->first_slot +
                           static_cast<std::uint32_t>(def_->bounds.size()) + 1);
  }
  for (const std::uint64_t c : snapshot) s.count += c;
  s.p50 = quantile_from(def_->bounds, snapshot, 0.50);
  s.p90 = quantile_from(def_->bounds, snapshot, 0.90);
  s.p95 = quantile_from(def_->bounds, snapshot, 0.95);
  s.p99 = quantile_from(def_->bounds, snapshot, 0.99);
  return s;
}

std::vector<std::uint64_t> Histogram::counts() const {
  if constexpr (!kEnabled) return {};
  if (reg_ == nullptr) return {};
  std::lock_guard<std::mutex> lk(reg_->mu_);
  std::vector<std::uint64_t> out(def_->bounds.size() + 1);
  for (std::size_t b = 0; b < out.size(); ++b) {
    out[b] = reg_->sum_slot(def_->first_slot + static_cast<std::uint32_t>(b));
  }
  return out;
}

// ---- lookups / export ------------------------------------------------------

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  if constexpr (!kEnabled) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = names_.find(name);
  if (it == names_.end() || it->second.first != 'c') return 0;
  return sum_slot(counters_[it->second.second].slot);
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  if constexpr (!kEnabled) return 0.0;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = names_.find(name);
  if (it == names_.end() || it->second.first != 'g') return 0.0;
  return gauges_[it->second.second].value.load(std::memory_order_relaxed);
}

Histogram MetricsRegistry::find_histogram(const std::string& name) {
  if constexpr (!kEnabled) return {};
  std::lock_guard<std::mutex> lk(mu_);
  auto it = names_.find(name);
  if (it == names_.end() || it->second.first != 'h') return {};
  return Histogram(this, &hists_[it->second.second]);
}

std::string MetricsRegistry::label(const std::string& key) const {
  if constexpr (!kEnabled) return {};
  std::lock_guard<std::mutex> lk(mu_);
  auto it = labels_.find(key);
  return it == labels_.end() ? std::string{} : it->second;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[40];
  // %.17g round-trips doubles exactly: same bits in, same text out.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json(bool include_volatile) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, ref] : names_) {  // names_ iterates sorted
    if (ref.first != 'c') continue;
    const CounterDef& def = counters_[ref.second];
    if (!include_volatile && !def.stable) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_u64(out, sum_slot(def.slot));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, ref] : names_) {
    if (ref.first != 'g') continue;
    const GaugeCell& cell = gauges_[ref.second];
    if (!include_volatile && !cell.stable) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_double(out, cell.value.load(std::memory_order_relaxed));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, ref] : names_) {
    if (ref.first != 'h') continue;
    const Histogram::Def& def = hists_[ref.second];
    if (!include_volatile && !def.stable) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"bounds\":[";
    for (std::size_t b = 0; b < def.bounds.size(); ++b) {
      if (b != 0) out += ',';
      append_double(out, def.bounds[b]);
    }
    out += "],\"counts\":[";
    std::uint64_t total = 0;
    for (std::size_t b = 0; b <= def.bounds.size(); ++b) {
      if (b != 0) out += ',';
      const std::uint64_t c =
          sum_slot(def.first_slot + static_cast<std::uint32_t>(b));
      total += c;
      append_u64(out, c);
    }
    out += "],\"count\":";
    append_u64(out, total);
    out += ",\"sum\":";
    append_u64(out, sum_slot(def.first_slot +
                             static_cast<std::uint32_t>(def.bounds.size()) + 1));
    out += '}';
  }
  out += "},\"labels\":{";
  first = true;
  for (const auto& [key, value] : labels_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, key);
    out += ':';
    append_json_string(out, value);
  }
  out += "}}";
  return out;
}

void MetricsRegistry::reset() {
  if constexpr (!kEnabled) return;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& sh : shards_) {
    for (std::size_t i = 0; i < next_slot_; ++i) {
      sh->slots[i].store(0, std::memory_order_relaxed);
    }
  }
  for (GaugeCell& cell : gauges_) {
    cell.value.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace edgehd::obs
