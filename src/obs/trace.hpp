// Bounded ring-buffer event tracer. Spans and instants carry a timestamp
// from whatever clock the emitting layer owns — the network simulator passes
// its virtual time (ns), serial protocol drivers pass kAutoTime and get a
// monotonic logical tick — plus a parent id, so a routed query's walk up the
// hierarchy (encode, per-node predict, escalation hops, reliable-transport
// retries) reconstructs as one tree.
//
// Determinism contract: events are only emitted from deterministic serial
// contexts. Parallel fan-outs (e.g. infer_routed_batch workers) install a
// TraceSuppress guard so their interleaving can never reorder the stream;
// with that rule, identical (seed, FaultPlan, worker-count) runs produce an
// identical event sequence. The ring keeps the newest `capacity` events;
// `dropped()` says how many fell off the front.
//
// Event names must be string literals (or otherwise outlive the tracer):
// the ring stores the pointer, not a copy.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <vector>

#include "metrics.hpp"  // kEnabled

namespace edgehd::obs {

/// Sentinel timestamp: "stamp with the tracer's own logical tick".
inline constexpr std::int64_t kAutoTime = std::numeric_limits<std::int64_t>::min();

struct TraceEvent {
  std::uint64_t id = 0;      ///< 1-based, emission order
  std::uint64_t parent = 0;  ///< 0 = root
  const char* name = "";
  std::int64_t t_begin = 0;
  std::int64_t t_end = 0;    ///< == t_begin for instants; -1 while open
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

inline bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.id == b.id && a.parent == b.parent &&
         std::strcmp(a.name, b.name) == 0 && a.t_begin == b.t_begin &&
         a.t_end == b.t_end && a.arg0 == b.arg0 && a.arg1 == b.arg1;
}

/// Thread-local trace suppression: while any guard is alive on this thread,
/// begin/instant return 0 and record nothing. Used by parallel fan-outs.
class TraceSuppress {
 public:
  TraceSuppress() noexcept;
  ~TraceSuppress();
  TraceSuppress(const TraceSuppress&) = delete;
  TraceSuppress& operator=(const TraceSuppress&) = delete;
  static bool active() noexcept;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);

  /// Opens a span; returns its id (0 when disabled/suppressed — every other
  /// method treats id 0 as "ignore me").
  std::uint64_t begin(const char* name, std::int64_t t = kAutoTime,
                      std::uint64_t parent = 0, std::uint64_t arg0 = 0,
                      std::uint64_t arg1 = 0);
  /// Closes a span (no-op if the event has fallen off the ring).
  void end(std::uint64_t id, std::int64_t t = kAutoTime);
  /// Zero-duration event.
  std::uint64_t instant(const char* name, std::int64_t t = kAutoTime,
                        std::uint64_t parent = 0, std::uint64_t arg0 = 0,
                        std::uint64_t arg1 = 0);

  void set_enabled(bool on) noexcept;
  bool enabled() const noexcept;

  /// Drops all buffered events and resets the id counter and logical tick.
  void clear();

  /// Copies the retained window, oldest first.
  std::vector<TraceEvent> snapshot() const;
  std::uint64_t emitted() const;  ///< total events ever emitted
  std::uint64_t dropped() const;  ///< emitted - retained
  std::size_t capacity() const noexcept { return capacity_; }

  /// Retained events as a stable-ordered JSON array.
  std::string to_json() const;

  /// The process-wide tracer every built-in hook reports to.
  static Tracer& global();

 private:
  bool should_emit() const noexcept;
  std::int64_t resolve(std::int64_t t);  // caller holds mu_

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> buf_;
  std::uint64_t next_id_ = 1;
  std::uint64_t tick_ = 0;
  std::atomic<bool> enabled_{true};
};

/// RAII span on the global tracer using logical ticks; for serial,
/// deterministic contexts (training rounds, protocol drivers).
class Span {
 public:
  explicit Span(const char* name, std::uint64_t parent = 0,
                std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
      : id_(Tracer::global().begin(name, kAutoTime, parent, arg0, arg1)) {}
  ~Span() { Tracer::global().end(id_); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  std::uint64_t id() const noexcept { return id_; }

 private:
  std::uint64_t id_ = 0;
};

}  // namespace edgehd::obs
