#include "dim_allocation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgehd::hier {

DimAllocation allocate_dims(const net::Topology& topology,
                            const std::vector<std::size_t>& leaf_features,
                            std::size_t total_dim, std::size_t min_dim) {
  const auto leaves = topology.leaves();
  if (leaves.size() != leaf_features.size()) {
    throw std::invalid_argument(
        "allocate_dims: leaf_features size must match leaf count");
  }
  if (total_dim == 0) {
    throw std::invalid_argument("allocate_dims: total_dim must be positive");
  }

  DimAllocation out;
  out.subtree_features.assign(topology.num_nodes(), 0);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (leaf_features[i] == 0) {
      throw std::invalid_argument("allocate_dims: leaf with zero features");
    }
    out.subtree_features[leaves[i]] = leaf_features[i];
  }
  // Propagate subtree feature counts to the root, shallowest levels last.
  for (std::size_t level = 1; level < topology.depth(); ++level) {
    for (net::NodeId id : topology.nodes_at_level(level)) {
      const net::NodeId p = topology.parent(id);
      if (p != net::kNoNode) {
        out.subtree_features[p] += out.subtree_features[id];
      }
    }
  }

  const std::size_t n = out.subtree_features[topology.root()];
  out.dims.assign(topology.num_nodes(), 0);
  for (net::NodeId id = 0; id < topology.num_nodes(); ++id) {
    const double share = static_cast<double>(out.subtree_features[id]) /
                         static_cast<double>(n);
    const auto d = static_cast<std::size_t>(
        std::lround(share * static_cast<double>(total_dim)));
    out.dims[id] = std::max(min_dim, d);
  }
  out.dims[topology.root()] = std::max(min_dim, total_dim);
  return out;
}

}  // namespace edgehd::hier
