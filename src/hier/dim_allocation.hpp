// Hypervector dimensionality allocation over the hierarchy
// (paper Section IV-A).
//
// The root uses the full dimensionality D; every other node receives
// d_i = D * n_i / n, where n_i is the number of raw features collected in
// that node's subtree. Lower nodes therefore hold fewer dimensions — enough
// for the information they can observe — which is one of the two sources of
// EdgeHD's compute savings (Section VI-D).
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"

namespace edgehd::hier {

/// Per-node hypervector dimensionalities for a deployment.
struct DimAllocation {
  std::vector<std::size_t> dims;          ///< indexed by NodeId
  std::vector<std::size_t> subtree_features;  ///< n_i per node
};

/// Computes d_i = max(min_dim, round(D * n_i / n)) for every node.
///
/// @param topology       the deployment tree
/// @param leaf_features  feature count per leaf, in leaves() order
/// @param total_dim      D at the root
/// @param min_dim        floor applied to every node (tiny slices still need
///                       a workable hypervector)
DimAllocation allocate_dims(const net::Topology& topology,
                            const std::vector<std::size_t>& leaf_features,
                            std::size_t total_dim, std::size_t min_dim = 32);

}  // namespace edgehd::hier
