#include "hier_encoder.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "hdc/random.hpp"

namespace edgehd::hier {

using hdc::Rng;
using hdc::derive_seed;

HierEncoder::HierEncoder(std::vector<std::size_t> child_dims,
                         std::size_t out_dim, std::uint64_t seed,
                         AggregationMode mode, std::size_t row_nnz)
    : child_dims_(std::move(child_dims)),
      in_dim_(std::accumulate(child_dims_.begin(), child_dims_.end(),
                              std::size_t{0})),
      out_dim_(out_dim),
      mode_(mode),
      row_nnz_(std::min(row_nnz, in_dim_)) {
  if (child_dims_.empty() || in_dim_ == 0 || out_dim_ == 0) {
    throw std::invalid_argument("HierEncoder: empty input or output space");
  }
  if (mode_ == AggregationMode::kConcatenation && out_dim_ != in_dim_) {
    throw std::invalid_argument(
        "HierEncoder: concatenation mode requires out_dim == sum(child_dims)");
  }
  if (mode_ == AggregationMode::kHolographic) {
    if (row_nnz_ == 0) {
      throw std::invalid_argument("HierEncoder: row_nnz must be positive");
    }
    Rng rng(derive_seed(seed, 0));
    indices_.resize(out_dim_ * row_nnz_);
    signs_.resize(out_dim_ * row_nnz_);
    for (std::size_t j = 0; j < out_dim_ * row_nnz_; ++j) {
      indices_[j] = static_cast<std::uint32_t>(rng.index(in_dim_));
      signs_[j] = rng.sign();
    }
  }
}

hdc::BipolarHV HierEncoder::concat(
    std::span<const hdc::BipolarHV> children) const {
  if (children.size() != child_dims_.size()) {
    throw std::invalid_argument("HierEncoder: child count mismatch");
  }
  hdc::BipolarHV out;
  out.reserve(in_dim_);
  for (std::size_t c = 0; c < children.size(); ++c) {
    if (children[c].size() != child_dims_[c]) {
      throw std::invalid_argument("HierEncoder: child dimension mismatch");
    }
    out.insert(out.end(), children[c].begin(), children[c].end());
  }
  return out;
}

hdc::AccumHV HierEncoder::concat_accum(
    std::span<const hdc::AccumHV> children) const {
  if (children.size() != child_dims_.size()) {
    throw std::invalid_argument("HierEncoder: child count mismatch");
  }
  hdc::AccumHV out;
  out.reserve(in_dim_);
  for (std::size_t c = 0; c < children.size(); ++c) {
    if (children[c].size() != child_dims_[c]) {
      throw std::invalid_argument("HierEncoder: child dimension mismatch");
    }
    out.insert(out.end(), children[c].begin(), children[c].end());
  }
  return out;
}

hdc::BipolarHV HierEncoder::encode(
    std::span<const std::int8_t> concatenated) const {
  assert(concatenated.size() == in_dim_);
  if (mode_ == AggregationMode::kConcatenation) {
    return hdc::BipolarHV(concatenated.begin(), concatenated.end());
  }
  hdc::BipolarHV out(out_dim_);
  for (std::size_t j = 0; j < out_dim_; ++j) {
    const std::uint32_t* idx = indices_.data() + j * row_nnz_;
    const std::int8_t* sgn = signs_.data() + j * row_nnz_;
    std::int32_t acc = 0;
    for (std::size_t t = 0; t < row_nnz_; ++t) {
      acc += sgn[t] * concatenated[idx[t]];
    }
    out[j] = acc < 0 ? std::int8_t{-1} : std::int8_t{1};
  }
  return out;
}

hdc::AccumHV HierEncoder::project(
    std::span<const std::int32_t> concatenated) const {
  assert(concatenated.size() == in_dim_);
  if (mode_ == AggregationMode::kConcatenation) {
    return hdc::AccumHV(concatenated.begin(), concatenated.end());
  }
  hdc::AccumHV out(out_dim_, 0);
  for (std::size_t j = 0; j < out_dim_; ++j) {
    const std::uint32_t* idx = indices_.data() + j * row_nnz_;
    const std::int8_t* sgn = signs_.data() + j * row_nnz_;
    std::int64_t acc = 0;
    for (std::size_t t = 0; t < row_nnz_; ++t) {
      acc += static_cast<std::int64_t>(sgn[t]) * concatenated[idx[t]];
    }
    // Rescale by the mixing degree so magnitudes stay comparable to the
    // inputs' (keeps accumulator wire widths and later additions bounded).
    out[j] = static_cast<std::int32_t>(acc / static_cast<std::int64_t>(
                 std::max<std::size_t>(1, row_nnz_ / 8)));
  }
  return out;
}

hdc::BipolarHV HierEncoder::aggregate(
    std::span<const hdc::BipolarHV> children) const {
  const auto cat = concat(children);
  return encode(cat);
}

hdc::AccumHV HierEncoder::aggregate_accum(
    std::span<const hdc::AccumHV> children) const {
  const auto cat = concat_accum(children);
  return project(cat);
}

std::uint64_t HierEncoder::macs_per_aggregation() const noexcept {
  if (mode_ == AggregationMode::kConcatenation) return 0;
  return static_cast<std::uint64_t>(out_dim_) * row_nnz_;
}

}  // namespace edgehd::hier
