// Hierarchical encoding: aggregating children hypervectors at gateway and
// central nodes (paper Section IV-A, Figure 4).
//
// A parent first concatenates the hypervectors received from its children.
// In *holographic* mode (the paper's proposal) the concatenation is then
// multiplied by a sparse random projection matrix with elements from
// {-1, 0, +1} and re-binarized: the projection mixes every input dimension
// into every output dimension, so feature information is spread
// holographically and the representation tolerates losing a large fraction
// of dimensions in transit (Figure 12). In *concatenation* mode (the
// non-holographic ablation) the concatenation is used as-is.
//
// The projection is linear, so it applies uniformly to bipolar sample
// hypervectors (binarize after), to integer class/batch hypervectors, and to
// residual hypervectors (keep integer) — which is what lets the same
// aggregator serve initial training, retraining and online updates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hdc/hypervector.hpp"

namespace edgehd::hier {

/// Aggregation mode at internal nodes.
enum class AggregationMode : std::uint8_t {
  kHolographic,    ///< concat + ternary random projection + sign
  kConcatenation,  ///< plain concat (non-holographic ablation)
};

/// One internal node's aggregator: input is the concatenation of its
/// children's hypervectors, output is the node's own hypervector space.
class HierEncoder {
 public:
  /// @param child_dims  dimensionality of each child's hypervectors, in
  ///                    child order; the input dimension is their sum
  /// @param out_dim     this node's dimensionality d_i. In concatenation
  ///                    mode out_dim must equal the sum of child_dims.
  /// @param seed        projection seed (deterministic per node)
  /// @param row_nnz     non-zeros per projection row; each output dimension
  ///                    mixes this many randomly chosen input dimensions
  HierEncoder(std::vector<std::size_t> child_dims, std::size_t out_dim,
              std::uint64_t seed, AggregationMode mode = AggregationMode::kHolographic,
              std::size_t row_nnz = 64);

  std::size_t in_dim() const noexcept { return in_dim_; }
  std::size_t out_dim() const noexcept { return out_dim_; }
  AggregationMode mode() const noexcept { return mode_; }
  const std::vector<std::size_t>& child_dims() const noexcept {
    return child_dims_;
  }

  /// Concatenates per-child bipolar hypervectors (sizes must match
  /// child_dims) into the input vector.
  hdc::BipolarHV concat(std::span<const hdc::BipolarHV> children) const;

  /// Concatenates per-child integer accumulators.
  hdc::AccumHV concat_accum(std::span<const hdc::AccumHV> children) const;

  /// Aggregates a concatenated bipolar input into this node's bipolar
  /// hypervector (projection + sign in holographic mode; identity in
  /// concatenation mode).
  hdc::BipolarHV encode(std::span<const std::int8_t> concatenated) const;

  /// Aggregates a concatenated integer accumulator without binarizing
  /// (class hypervectors, batch hypervectors, residuals).
  hdc::AccumHV project(std::span<const std::int32_t> concatenated) const;

  /// Convenience: concat + encode for bipolar children.
  hdc::BipolarHV aggregate(std::span<const hdc::BipolarHV> children) const;

  /// Convenience: concat + project for accumulator children.
  hdc::AccumHV aggregate_accum(std::span<const hdc::AccumHV> children) const;

  /// Multiply-accumulates per aggregation (cost-model input): row_nnz per
  /// output dimension in holographic mode, 0 in concatenation mode.
  std::uint64_t macs_per_aggregation() const noexcept;

 private:
  std::vector<std::size_t> child_dims_;
  std::size_t in_dim_;
  std::size_t out_dim_;
  AggregationMode mode_;
  std::size_t row_nnz_;
  // Sparse ternary projection, row-major: for output dim j, row_nnz pairs of
  // (input index, sign).
  std::vector<std::uint32_t> indices_;
  std::vector<std::int8_t> signs_;
};

}  // namespace edgehd::hier
